(** Simultaneous scheduling-and-binding state (Section IV.B).

    Binding an operation assigns it both a control step and a resource
    instance.  Every candidate binding is evaluated against the datapath
    netlist built so far: input sharing muxes (sized by the number of
    distinct sources feeding each instance port, pre-allocated as soon as an
    instance may be shared — Fig. 8a), register launch/setup and the
    register-input sharing mux, combinational chaining across ops bound to
    the same step, multi-cycle black boxes, guard (register-enable) arrival
    for predicated ops, and structural combinational cycles through the
    sharing network (Fig. 6), which are rejected rather than reported as
    false paths.

    The module maintains two arrival-time views of every bound op:

    - the {e accurate} view including all mux delays (what the paper's
      netlist queries return), and
    - the {e naive} view with pure operator delays (what a timing-unaware
      scheduler would believe).

    The [timing_aware] flag selects which view gates binding decisions; the
    accurate view always feeds the final timing report, so the
    [~timing_aware:false] ablation shows the negative slack a naive
    scheduler hands to logic synthesis. *)

open Hls_ir
open Hls_techlib

type inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** op ids, most recent first *)
  mutable prealloc_shared : bool;
      (** instantiate input muxes even before a second op arrives *)
  added_by_expert : bool;
  mutable mux_cache : int array option;
      (** per-port distinct-source counts, invalidated when [bound]
          changes (the hottest query of the timing engine) *)
}

type placement = { pl_step : int; pl_finish : int; pl_inst : int option }

type t = {
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  mutable insts : inst list;
  inst_tbl : (int, inst) Hashtbl.t;  (** id -> instance, O(1) lookup *)
  mutable next_inst_id : int;
  placements : (int, placement) Hashtbl.t;
  busy : (int * int, int list ref) Hashtbl.t;  (** (inst, slot) -> bound ops *)
  arr_true : (int, float) Hashtbl.t;
  arr_naive : (int, float) Hashtbl.t;
  chain : Hls_timing.Cycle_detector.t;
  forbidden : (int * int, unit) Hashtbl.t;  (** (op, inst) pairs excluded by restraints *)
  dedicated : (int, unit) Hashtbl.t;
      (** user constraint (Section IV.B item 4): these ops must own their
          resource instance outright — no sharing in any state *)
  timing_aware : bool;
  mutable query_count : int;  (** number of netlist timing queries issued *)
  mutable journal : (int * float option * float option) list;
      (** undo log of arrival changes during a trial binding *)
  mutable journal_active : bool;
}

let create ?(timing_aware = true) ~lib ~clock_ps (region : Region.t) =
  {
    region;
    lib;
    clock_ps;
    dfg = region.Region.dfg;
    insts = [];
    inst_tbl = Hashtbl.create 16;
    next_inst_id = 0;
    placements = Hashtbl.create 64;
    busy = Hashtbl.create 64;
    arr_true = Hashtbl.create 64;
    arr_naive = Hashtbl.create 64;
    chain = Hls_timing.Cycle_detector.create ();
    forbidden = Hashtbl.create 8;
    dedicated = Hashtbl.create 4;
    timing_aware;
    query_count = 0;
    journal = [];
    journal_active = false;
  }

let add_inst ?(added_by_expert = false) t rtype =
  let inst =
    { inst_id = t.next_inst_id; rtype; bound = []; prealloc_shared = false; added_by_expert;
      mux_cache = None }
  in
  t.next_inst_id <- t.next_inst_id + 1;
  t.insts <- t.insts @ [ inst ];
  Hashtbl.replace t.inst_tbl inst.inst_id inst;
  inst

let find_inst t id = Hashtbl.find t.inst_tbl id

(** Reset all pass-local state (placements, busy tables, arrivals, chain
    graph) while keeping the resource set and forbidden pairs — the state
    carried between scheduling passes. *)
let reset_pass t =
  Hashtbl.reset t.placements;
  Hashtbl.reset t.busy;
  Hashtbl.reset t.arr_true;
  Hashtbl.reset t.arr_naive;
  List.iter
    (fun i ->
      i.bound <- [];
      i.mux_cache <- None)
    t.insts;
  Hls_timing.Cycle_detector.clear t.chain;
  (* mark shared instances: a class with more candidate ops than instances
     will be shared, so its input muxes are pre-allocated (Fig. 8a) *)
  let ops_by_class inst =
    List.length
      (List.filter
         (fun op ->
           match Resource.of_op t.dfg op with
           | Some rt -> Resource.can_merge rt inst.rtype
           | None -> false)
         (Region.member_ops t.region))
  in
  List.iter
    (fun inst ->
      let n_insts =
        List.length (List.filter (fun i -> Resource.can_merge i.rtype inst.rtype) t.insts)
      in
      inst.prealloc_shared <- ops_by_class inst > n_insts)
    t.insts

let placement t op_id = Hashtbl.find_opt t.placements op_id

let is_placed t op_id = Hashtbl.mem t.placements op_id

let slot t step = if Region.is_pipelined t.region then step mod Region.ii t.region else step

let busy_ref t inst step =
  let key = (inst, slot t step) in
  match Hashtbl.find_opt t.busy key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.busy key r;
      r

let op_latency t (op : Dfg.op) = Library.op_latency t.lib op.Dfg.kind

let is_multicycle t op = op_latency t op > 1

(** Distinct sources feeding input [port] of [inst] over its bound ops.
    Cached per instance; every [bound]/[rtype] mutation must clear
    [mux_cache]. *)
let mux_inputs t (inst : inst) ~port =
  let counts =
    match inst.mux_cache with
    | Some c when port < Array.length c -> c
    | _ ->
        let n_ports = max (port + 1) (List.length inst.rtype.Resource.in_widths) in
        let c =
          Array.init n_ports (fun p ->
              List.filter_map
                (fun o -> Option.map (fun e -> e.Dfg.src) (Dfg.input t.dfg o ~port:p))
                inst.bound
              |> List.sort_uniq compare |> List.length)
        in
        inst.mux_cache <- Some c;
        c
  in
  let n = if port < Array.length counts then counts.(port) else 0 in
  if inst.prealloc_shared then max n 2 else n

let in_mux_delay t inst ~port = Library.mux_delay t.lib ~inputs:(mux_inputs t inst ~port)

(** The register-input sharing mux every registered result passes (the
    second mux of the paper's Fig. 8 arithmetic).  With II = 1 every value
    is live on every cycle, so registers cannot be shared and the mux
    disappears — which is what lets the paper's Example 3 close timing. *)
let reg_mux_delay t =
  if Region.is_pipelined t.region && Region.ii t.region = 1 then 0.0
  else Library.mux_delay t.lib ~inputs:2

(** {2 Arrival computation} *)

(** Arrival of the value carried by edge [e] at the inputs of an op placed
    at [step], before any input mux.  [naive] selects the mux-free view. *)
let source_arrival t ~step ~naive e =
  let arr_tbl = if naive then t.arr_naive else t.arr_true in
  let p = e.Dfg.src in
  if e.Dfg.distance > 0 then t.lib.Library.ff_clk_q
  else if not (Region.mem t.region p) then t.lib.Library.ff_clk_q
  else
    match Hashtbl.find_opt t.placements p with
    | None -> t.lib.Library.ff_clk_q (* should not happen: scheduler orders by readiness *)
    | Some pl ->
        let p_op = Dfg.find t.dfg p in
        if is_multicycle t p_op then t.lib.Library.ff_clk_q
        else if pl.pl_finish = step then
          Option.value (Hashtbl.find_opt arr_tbl p) ~default:t.lib.Library.ff_clk_q
        else t.lib.Library.ff_clk_q

let guard_arrival t ~step ~naive (op : Dfg.op) =
  if op.Dfg.speculated || Guard.is_always op.Dfg.guard then 0.0
  else
    let arr_tbl = if naive then t.arr_naive else t.arr_true in
    List.fold_left
      (fun acc p ->
        if not (Region.mem t.region p) then max acc t.lib.Library.ff_clk_q
        else
          match Hashtbl.find_opt t.placements p with
          | Some pl when pl.pl_finish = step ->
              max acc (Option.value (Hashtbl.find_opt arr_tbl p) ~default:t.lib.Library.ff_clk_q)
          | Some _ -> max acc t.lib.Library.ff_clk_q
          | None -> max acc t.lib.Library.ff_clk_q)
      0.0 (Guard.preds op.Dfg.guard)

(** Combinational delay of [op] when executed on [inst_opt]. *)
let exec_delay t (op : Dfg.op) inst_opt =
  match inst_opt with
  | Some i -> Library.delay t.lib (find_inst t i).rtype
  | None -> (
      match Resource.of_op t.dfg op with None -> 0.0 | Some rt -> Library.delay t.lib rt)

(** Recompute both arrival views of a placed op; returns true if either
    changed.  The guard does not serialize with the datapath — it drives
    the commit register's enable pin in parallel and is accounted for in
    {!endpoint_slack}. *)
let recompute_arrival t op_id =
  t.query_count <- t.query_count + 1;
  let op = Dfg.find t.dfg op_id in
  let pl = Hashtbl.find t.placements op_id in
  let step = pl.pl_step in
  let compute ~naive =
    let ins = Dfg.in_edges t.dfg op_id in
    let data =
      List.fold_left
        (fun acc e ->
          let a = source_arrival t ~step ~naive e in
          let a =
            if naive then a
            else
              match pl.pl_inst with
              | Some i -> a +. in_mux_delay t (find_inst t i) ~port:e.Dfg.port
              | None -> a
          in
          max acc a)
        (match op.Dfg.kind with
        | Opkind.Const _ -> 0.0
        | Opkind.Read _ -> t.lib.Library.ff_clk_q
        | _ -> if ins = [] then t.lib.Library.ff_clk_q else 0.0)
        ins
    in
    data +. exec_delay t op pl.pl_inst
  in
  let new_true = compute ~naive:false and new_naive = compute ~naive:true in
  let old_true = Hashtbl.find_opt t.arr_true op_id in
  if t.journal_active then
    t.journal <- (op_id, old_true, Hashtbl.find_opt t.arr_naive op_id) :: t.journal;
  Hashtbl.replace t.arr_true op_id new_true;
  Hashtbl.replace t.arr_naive op_id new_naive;
  (match old_true with Some v -> abs_float (v -. new_true) > 0.001 | None -> true)

(** Same-step combinational consumers of a placed op (data or guard),
    i.e. the ops whose arrivals depend on this op's arrival. *)
let chained_consumers t op_id =
  match Hashtbl.find_opt t.placements op_id with
  | None -> []
  | Some pl ->
      let step = pl.pl_finish in
      let data =
        List.filter_map
          (fun e ->
            if e.Dfg.distance <> 0 then None
            else
              match Hashtbl.find_opt t.placements e.Dfg.dst with
              | Some cpl when cpl.pl_step = step -> Some e.Dfg.dst
              | _ -> None)
          (Dfg.out_edges t.dfg op_id)
      in
      data

(** Worst-case registered-endpoint slack of a placed op: its result must
    traverse the register-input mux and meet setup, and its commit enable
    (the guard, unless speculated) must also settle in time. *)
let endpoint_slack t ~naive op_id =
  let arr_tbl = if naive then t.arr_naive else t.arr_true in
  let arr = Option.value (Hashtbl.find_opt arr_tbl op_id) ~default:0.0 in
  let op = Dfg.find t.dfg op_id in
  let pl = Hashtbl.find_opt t.placements op_id in
  let g =
    match pl with Some pl -> guard_arrival t ~step:pl.pl_finish ~naive op | None -> 0.0
  in
  let reg_path = if naive then 0.0 else reg_mux_delay t in
  t.clock_ps -. (max arr g +. reg_path +. t.lib.Library.ff_setup)

(** Propagate arrival changes from [seeds] through same-step chains.
    Returns the worst endpoint slack seen (in the decision view) together
    with the op carrying it — so the caller can tell a failure of the new
    binding itself from collateral damage to ops already bound (a saturated
    instance). *)
let propagate t seeds =
  let worst = ref infinity in
  let worst_op = ref (-1) in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) seeds;
  let guard_deps = lazy (
    (* ops guarded by some op: reverse index built on demand *)
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun id _ ->
        let op = Dfg.find t.dfg id in
        List.iter
          (fun p ->
            let r = match Hashtbl.find_opt tbl p with Some r -> r | None -> let r = ref [] in Hashtbl.replace tbl p r; r in
            r := id :: !r)
          (Guard.preds op.Dfg.guard))
      t.placements;
    tbl)
  in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if Hashtbl.mem t.placements id then begin
      let changed = recompute_arrival t id in
      let slack = endpoint_slack t ~naive:(not t.timing_aware) id in
      if slack < !worst then begin
        worst := slack;
        worst_op := id
      end;
      if changed then begin
        List.iter (fun c -> Queue.add c queue) (chained_consumers t id);
        (match Hashtbl.find_opt (Lazy.force guard_deps) id with
        | Some r ->
            let pl = Hashtbl.find t.placements id in
            List.iter
              (fun g ->
                match Hashtbl.find_opt t.placements g with
                | Some gpl when gpl.pl_step = pl.pl_finish -> Queue.add g queue
                | _ -> ())
              !r
        | None -> ())
      end
    end
  done;
  (!worst, !worst_op)

(** Resource instances that combinationally feed [op] when placed at
    [step], tracing through same-step wire ops (for the structural-cycle
    check). *)
let chain_source_insts t op_id ~step =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt t.placements id with
      | Some pl when pl.pl_finish = step && not (is_multicycle t (Dfg.find t.dfg id)) -> (
          match pl.pl_inst with
          | Some j -> acc := j :: !acc
          | None ->
              List.iter
                (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src)
                (Dfg.in_edges t.dfg id))
      | _ -> ()
    end
  in
  List.iter (fun e -> if e.Dfg.distance = 0 then visit e.Dfg.src) (Dfg.in_edges t.dfg op_id);
  List.sort_uniq compare !acc

(** {2 Binding} *)

(** Inter-iteration dependency check (modulo constraint): for an edge with
    distance [d], consumer step [sc] must satisfy
    [sc >= sp - d*II + 1] where [sp] is the producer's finishing step. *)
let modulo_ok t ~op_id ~step ~finish =
  let ii = Region.ii t.region in
  let ok_in =
    List.for_all
      (fun e ->
        e.Dfg.distance = 0
        ||
        match Hashtbl.find_opt t.placements e.Dfg.src with
        | Some pl -> step >= pl.pl_finish - (e.Dfg.distance * ii) + 1
        | None -> true)
      (Dfg.in_edges t.dfg op_id)
  in
  let ok_out =
    List.for_all
      (fun e ->
        e.Dfg.distance = 0
        ||
        match Hashtbl.find_opt t.placements e.Dfg.dst with
        | Some pl -> pl.pl_step >= finish - (e.Dfg.distance * ii) + 1
        | None -> true)
      (Dfg.out_edges t.dfg op_id)
  in
  ok_in && ok_out

(** Cheap feasibility screen before the full trial binding: the op's own
    endpoint path on [inst] (inputs via the grown sharing mux, instance
    delay, register mux, setup).  Returns the estimated slack; a negative
    value means the full trial would reject too, so callers skip it.
    Collateral effects on other bound ops are not screened — the trial
    still catches those. *)
let quick_slack t (op : Dfg.op) ~step ~inst_id =
  let i = find_inst t inst_id in
  let d = Library.delay t.lib i.rtype in
  let data =
    List.fold_left
      (fun acc e ->
        let a = source_arrival t ~step ~naive:false e in
        let mux = Library.mux_delay t.lib ~inputs:(mux_inputs t i ~port:e.Dfg.port + 1) in
        max acc (a +. mux))
      t.lib.Library.ff_clk_q
      (Dfg.in_edges t.dfg op.Dfg.id)
  in
  let g = guard_arrival t ~step ~naive:false op in
  t.clock_ps -. (max (data +. d) g +. reg_mux_delay t +. t.lib.Library.ff_setup)

exception Fail of Restraint.fail

(** Attempt to bind [op] at [step] on [inst_opt] ([None] for wire and port
    ops).  On failure the state is left untouched and the failure reason is
    returned. *)
let try_bind t (op : Dfg.op) ~step ~inst_opt : (unit, Restraint.fail) result =
  let lat = op_latency t op in
  let finish = step + lat - 1 in
  try
    if finish > t.region.Region.n_steps - 1 then raise (Fail Restraint.F_window);
    (match op.Dfg.anchor with
    | Some a when a <> step -> raise (Fail Restraint.F_anchor)
    | _ -> ());
    if not (modulo_ok t ~op_id:op.Dfg.id ~step ~finish) then raise (Fail Restraint.F_dep);
    (* resource-specific checks *)
    let inst = Option.map (find_inst t) inst_opt in
    (match inst with
    | Some i ->
        if Hashtbl.mem t.forbidden (op.Dfg.id, i.inst_id) then raise (Fail Restraint.F_forbidden);
        (match Resource.of_op t.dfg op with
        | Some need when not (Resource.fits ~need ~have:i.rtype) ->
            if not (Resource.can_merge need i.rtype) then
              raise (Fail (Restraint.F_busy i.rtype))
        | _ -> ());
        (* user-dedicated instances: a dedicated op tolerates no cohabitant
           in any state, and instances already hosting a dedicated op admit
           nobody else *)
        if Hashtbl.mem t.dedicated op.Dfg.id && i.bound <> [] then
          raise (Fail (Restraint.F_busy i.rtype));
        if List.exists (fun o -> Hashtbl.mem t.dedicated o) i.bound then
          raise (Fail (Restraint.F_busy i.rtype));
        (* busy check across occupied steps, honouring edge equivalence and
           predicate orthogonality *)
        for s = step to finish do
          let others = !(busy_ref t i.inst_id s) in
          if
            List.exists
              (fun o ->
                not (Guard.mutually_exclusive (Dfg.find t.dfg o).Dfg.guard op.Dfg.guard))
              others
          then raise (Fail (Restraint.F_busy i.rtype))
        done;
        (* cheap endpoint screen before the expensive trial (timing-aware
           mode only; the naive ablation stays blind to mux effects) *)
        if t.timing_aware && i.bound <> [] then begin
          let sl = quick_slack t op ~step ~inst_id:i.inst_id in
          if sl < -0.001 then raise (Fail (Restraint.F_slack sl))
        end;
        (* structural combinational cycles *)
        if lat = 1 then
          List.iter
            (fun j ->
              if
                Hls_timing.Cycle_detector.would_close_cycle t.chain ~src:j ~dst:i.inst_id
              then raise (Fail (Restraint.F_cycle i.inst_id)))
            (chain_source_insts t op.Dfg.id ~step)
    | None -> ());
    (* --- trial placement with journaled rollback --- *)
    let old_rtype = Option.map (fun i -> i.rtype) inst in
    t.journal <- [];
    t.journal_active <- true;
    Hashtbl.replace t.placements op.Dfg.id { pl_step = step; pl_finish = finish; pl_inst = inst_opt };
    (match inst with
    | Some i ->
        (match Resource.of_op t.dfg op with
        | Some need when not (Resource.fits ~need ~have:i.rtype) ->
            i.rtype <- Resource.merge need i.rtype
        | _ -> ());
        i.bound <- op.Dfg.id :: i.bound;
        i.mux_cache <- None;
        for s = step to finish do
          let r = busy_ref t i.inst_id s in
          r := op.Dfg.id :: !r
        done
    | None -> ());
    (* arrivals: the new op, then everything sharing its instance (mux
       growth), then downstream chains *)
    let seeds =
      op.Dfg.id :: (match inst with Some i -> List.filter (fun o -> o <> op.Dfg.id) i.bound | None -> [])
    in
    let worst_slack, worst_op = propagate t seeds in
    t.journal_active <- false;
    if worst_slack < -0.001 then begin
      (* rollback: undo placement, busy tables and journaled arrivals *)
      Hashtbl.remove t.placements op.Dfg.id;
      (match inst with
      | Some i ->
          i.bound <- List.filter (fun o -> o <> op.Dfg.id) i.bound;
          i.mux_cache <- None;
          (match old_rtype with Some rt -> i.rtype <- rt | None -> ());
          for s = step to finish do
            let r = busy_ref t i.inst_id s in
            r := List.filter (fun o -> o <> op.Dfg.id) !r
          done
      | None -> ());
      List.iter
        (fun (id, ot, on) ->
          (match ot with Some v -> Hashtbl.replace t.arr_true id v | None -> Hashtbl.remove t.arr_true id);
          match on with Some v -> Hashtbl.replace t.arr_naive id v | None -> Hashtbl.remove t.arr_naive id)
        t.journal;
      t.journal <- [];
      (* a violation on an op already bound means this instance cannot
         absorb one more source: the resource, not the timing of the new
         op, is the limiting factor *)
      if worst_op <> op.Dfg.id then
        Error
          (Restraint.F_busy
             (match inst with Some i -> i.rtype | None -> Option.value (Resource.of_op t.dfg op) ~default:{ Resource.rclass = Opkind.R_wire; in_widths = []; out_width = 1 }))
      else Error (Restraint.F_slack worst_slack)
    end
    else begin
      t.journal <- [];
      (* commit chain edges *)
      (match inst with
      | Some i ->
          if lat = 1 then
            List.iter
              (fun j ->
                if not (Hls_timing.Cycle_detector.mem_edge t.chain ~src:j ~dst:i.inst_id) then
                  Hls_timing.Cycle_detector.add_edge t.chain ~src:j ~dst:i.inst_id)
              (chain_source_insts t op.Dfg.id ~step)
      | None -> ());
      Ok ()
    end
  with Fail f -> Error f

(** Unconditionally record a placement, skipping every feasibility check
    (timing, busy tables still maintained, cycles ignored).  Used to import
    schedules produced by external engines — the baseline comparators —
    into the accurate timing/area reporting machinery. *)
let force_bind t (op : Dfg.op) ~step ~inst_opt =
  let lat = op_latency t op in
  let finish = step + lat - 1 in
  Hashtbl.replace t.placements op.Dfg.id { pl_step = step; pl_finish = finish; pl_inst = inst_opt };
  (match inst_opt with
  | Some i ->
      let inst = find_inst t i in
      (match Resource.of_op t.dfg op with
      | Some need when not (Resource.fits ~need ~have:inst.rtype) ->
          if Resource.can_merge need inst.rtype then inst.rtype <- Resource.merge need inst.rtype
          else
            inst.rtype <-
              {
                Resource.rclass = inst.rtype.Resource.rclass;
                in_widths = List.map2 max inst.rtype.Resource.in_widths need.Resource.in_widths;
                out_width = max inst.rtype.Resource.out_width need.Resource.out_width;
              }
      | _ -> ());
      inst.bound <- op.Dfg.id :: inst.bound;
      inst.mux_cache <- None;
      for s = step to finish do
        let r = busy_ref t i s in
        r := op.Dfg.id :: !r
      done
  | None -> ());
  ignore (propagate t [ op.Dfg.id ])

(** Refresh every arrival after a batch of [force_bind]s (processing in
    step order so chained arrivals settle). *)
let recompute_all t =
  let by_step =
    Hashtbl.fold (fun id pl acc -> (pl.pl_step, id) :: acc) t.placements []
    |> List.sort compare |> List.map snd
  in
  ignore (propagate t by_step)

(** Instances compatible with [op]: an instance already wide enough always
    qualifies ([fits]); otherwise the width-merge rule decides whether the
    instance may be widened to host the op.  Preferred order: exact-fit
    first, then least-loaded. *)
let compatible_insts t (op : Dfg.op) =
  match Resource.of_op t.dfg op with
  | None -> []
  | Some need ->
      t.insts
      |> List.filter (fun i -> Resource.fits ~need ~have:i.rtype || Resource.can_merge need i.rtype)
      |> List.stable_sort (fun a b ->
             let fit i = if Resource.fits ~need ~have:i.rtype then 0 else 1 in
             compare (fit a, List.length a.bound) (fit b, List.length b.bound))

(** {2 Reporting} *)

(** Values that must live in registers: results consumed in a later step,
    loop-carried values, and port writes. *)
let registered_ops t =
  Hashtbl.fold
    (fun id pl acc ->
      let op = Dfg.find t.dfg id in
      let crosses =
        List.exists
          (fun e ->
            e.Dfg.distance > 0
            || (not (Region.mem t.region e.Dfg.dst))
            ||
            match Hashtbl.find_opt t.placements e.Dfg.dst with
            | Some cpl -> cpl.pl_step > pl.pl_finish
            | None -> true)
          (Dfg.out_edges t.dfg id)
      in
      let is_write = match op.Dfg.kind with Opkind.Write _ -> true | _ -> false in
      if crosses || is_write then id :: acc else acc)
    t.placements []
  |> List.sort compare

(** Critical-path decomposition for the downstream-synthesis model: one
    path per registered endpoint, tracing the argmax chain backwards. *)
let timing_report t : Hls_timing.Synthesize.report =
  let paths =
    List.filter_map
      (fun endpoint ->
        let pl = Hashtbl.find t.placements endpoint in
        let step = pl.pl_finish in
        let fixed = ref (reg_mux_delay t +. t.lib.Library.ff_setup) in
        let elems = ref [] in
        let rec back id =
          let op = Dfg.find t.dfg id in
          let opl = Hashtbl.find t.placements id in
          (match opl.pl_inst with
          | Some i ->
              let inst = find_inst t i in
              elems :=
                {
                  Hls_timing.Synthesize.pe_inst = i;
                  pe_rtype = inst.rtype;
                  pe_nominal = Library.delay t.lib inst.rtype;
                }
                :: !elems
          | None -> ());
          (* find dominant input *)
          let best = ref None in
          List.iter
            (fun e ->
              let a = source_arrival t ~step ~naive:false e in
              let mux =
                match opl.pl_inst with
                | Some i -> in_mux_delay t (find_inst t i) ~port:e.Dfg.port
                | None -> 0.0
              in
              let tot = a +. mux in
              match !best with
              | Some (_, _, bt) when bt >= tot -> ()
              | _ -> best := Some (e, mux, tot))
            (Dfg.in_edges t.dfg id);
          match !best with
          | None -> fixed := !fixed +. (match op.Dfg.kind with Opkind.Const _ -> 0.0 | _ -> t.lib.Library.ff_clk_q)
          | Some (e, mux, _) ->
              fixed := !fixed +. mux;
              let p = e.Dfg.src in
              let chained =
                e.Dfg.distance = 0
                && Region.mem t.region p
                &&
                match Hashtbl.find_opt t.placements p with
                | Some ppl -> ppl.pl_finish = step && not (is_multicycle t (Dfg.find t.dfg p))
                | None -> false
              in
              if chained then back p else fixed := !fixed +. t.lib.Library.ff_clk_q
        in
        back endpoint;
        if !elems = [] then None
        else
          Some
            {
              Hls_timing.Synthesize.p_endpoint = (Dfg.find t.dfg endpoint).Dfg.name;
              p_step = step;
              p_fixed = !fixed;
              p_elems = !elems;
            })
      (registered_ops t)
  in
  { Hls_timing.Synthesize.r_clock_ps = t.clock_ps; r_paths = paths }

(** Worst accurate endpoint slack over all placed ops. *)
let worst_slack t =
  Hashtbl.fold (fun id _ acc -> min acc (endpoint_slack t ~naive:false id)) t.placements infinity

(** {2 Estimation hooks for the expert system}

    After a failed pass, the expert system asks "would this action have
    saved the failing binding?"  These estimators answer using the arrival
    state the pass left behind. *)

(** Estimated (data arrival, guard arrival, exec delay, endpoint overhead)
    for an unplaced op hypothetically placed at [step].  The data arrival
    includes a 2-input sharing mux when the op's class will be shared. *)
let estimate t (op : Dfg.op) ~step =
  let shared =
    match Resource.of_op t.dfg op with
    | None -> false
    | Some need ->
        let n_ops =
          List.length
            (List.filter
               (fun o ->
                 match Resource.of_op t.dfg o with
                 | Some rt -> Resource.can_merge rt need
                 | None -> false)
               (Region.member_ops t.region))
        in
        let n_insts = List.length (List.filter (fun i -> Resource.can_merge i.rtype need) t.insts) in
        n_ops > n_insts
  in
  let mux = if shared then Library.mux_delay t.lib ~inputs:2 else 0.0 in
  let data =
    List.fold_left
      (fun acc e -> max acc (source_arrival t ~step ~naive:false e +. mux))
      (match op.Dfg.kind with Opkind.Const _ -> 0.0 | _ -> t.lib.Library.ff_clk_q)
      (Dfg.in_edges t.dfg op.Dfg.id)
  in
  let guard = guard_arrival t ~step ~naive:false op in
  let d = exec_delay t op None in
  let overhead = reg_mux_delay t +. t.lib.Library.ff_setup in
  (data, guard, d, overhead)

(** Would [op] meet timing at [step] on a fresh resource instance?
    [speculated] drops the guard from the enable path. *)
let would_fit t (op : Dfg.op) ~step ~speculated =
  let data, guard, d, overhead = estimate t op ~step in
  let commit = if speculated then data +. d else max (data +. d) guard in
  commit +. overhead <= t.clock_ps +. 0.001

(** Is the failing path dominated by the guard's enable arrival (so that
    speculation, not resources, is the right fix)? *)
let guard_dominated t (op : Dfg.op) ~step =
  let data, guard, d, _ = estimate t op ~step in
  guard > data +. d +. 0.001

(** Would [op] meet timing on some {e existing} compatible instance if all
    its inputs were registered (i.e. at a fresh later step)?  False when
    every compatible instance's sharing muxes are already too slow — the
    case where adding states cannot help and adding a resource can. *)
let would_fit_existing t (op : Dfg.op) =
  let overhead = reg_mux_delay t +. t.lib.Library.ff_setup in
  match Resource.of_op t.dfg op with
  | None -> true
  | Some need ->
      List.exists
        (fun i ->
          (Resource.fits ~need ~have:i.rtype || Resource.can_merge need i.rtype)
          &&
          let d = Library.delay t.lib i.rtype in
          (* binding the op itself adds one more source to the muxes *)
          let worst_mux =
            List.fold_left
              (fun acc port ->
                max acc (Library.mux_delay t.lib ~inputs:(mux_inputs t i ~port + 1)))
              0.0
              (List.init (List.length i.rtype.Resource.in_widths) Fun.id)
          in
          t.lib.Library.ff_clk_q +. worst_mux +. d +. overhead <= t.clock_ps +. 0.001)
        t.insts
