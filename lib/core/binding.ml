(** Simultaneous scheduling-and-binding policy (Section IV.B).

    Binding an operation assigns it both a control step and a resource
    instance.  The structural netlist — instances, sharing muxes, busy
    tables, placements, both arrival views — and the incremental timing
    engine live in [Hls_netlist.Netlist]; this module layers the paper's
    {e policy} on top of that mechanism:

    - the restraint checks gating a candidate binding (scheduling window,
      anchors, modulo/inter-iteration dependencies, forbidden pairs,
      user-dedicated instances, busy-table conflicts honouring predicate
      orthogonality, structural combinational cycles),
    - the cheap {!quick_slack} endpoint screen that skips the expensive
      trial when the op's own path cannot possibly close,
    - the trial protocol itself: a candidate binding runs inside a netlist
      transaction ([begin_trial] / mutate / [propagate]) and is committed
      or rolled back on the resulting worst slack, and
    - the estimation hooks the expert system uses after a failed pass.

    The [timing_aware] flag selects which arrival view gates binding
    decisions; the accurate view always feeds the final timing report, so
    the [~timing_aware:false] ablation shows the negative slack a naive
    scheduler hands to logic synthesis. *)

open Hls_ir
open Hls_techlib
module Netlist = Hls_netlist.Netlist

type inst = Netlist.inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;
  mutable prealloc_shared : bool;
  added_by_expert : bool;
  mutable mux_cache : int list array option;
  mutable mux_delays : float array option;
}

type placement = Netlist.placement = { pl_step : int; pl_finish : int; pl_inst : int option }

type t = {
  net : Netlist.t;  (** the datapath netlist + incremental timing engine *)
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  forbidden : (int * int, unit) Hashtbl.t;  (** (op, inst) pairs excluded by restraints *)
  dedicated : (int, unit) Hashtbl.t;
      (** user constraint (Section IV.B item 4): these ops must own their
          resource instance outright — no sharing in any state *)
  timing_aware : bool;
  mutable has_forced : bool;
      (** a [force_bind] (baseline import, slack-tolerating ablation) may
          have committed a negative-slack op, so the narrowed-seed fast
          path in [try_bind] — which relies on every committed op being
          slack-clean — is disabled for the rest of the pass history *)
  class_ops_memo : (Resource.t, int) Hashtbl.t;
      (** member-op count per resource need (the region membership is
          static, so the counts never change) — keeps the expert's
          per-restraint estimates from rescanning every member op *)
}

let create ?(timing_aware = true) ~lib ~clock_ps (region : Region.t) =
  {
    net = Netlist.create ~lib ~clock_ps region;
    region;
    lib;
    clock_ps;
    dfg = region.Region.dfg;
    forbidden = Hashtbl.create 8;
    dedicated = Hashtbl.create 4;
    timing_aware;
    has_forced = false;
    class_ops_memo = Hashtbl.create 8;
  }

(** The arrival view that gates this binder's decisions. *)
let decision_view t = if t.timing_aware then Netlist.Accurate else Netlist.Naive

let add_inst ?added_by_expert t rtype = Netlist.add_inst ?added_by_expert t.net rtype
let find_inst t id = Netlist.find_inst t.net id

(** Reset all pass-local netlist state while keeping the resource set and
    forbidden pairs — the state carried between scheduling passes.
    [keep_prealloc] skips the [prealloc_shared] recompute (sound when no
    instance was added since the previous pass). *)
let reset_pass ?keep_prealloc t =
  t.has_forced <- false;
  Netlist.reset_pass ?keep_prealloc t.net

let placement t op_id = Netlist.placement t.net op_id
let is_placed t op_id = Netlist.is_placed t.net op_id
let slot t step = Netlist.slot t.net step
let op_latency t op = Netlist.op_latency t.net op
let is_multicycle t op = Netlist.is_multicycle t.net op

let endpoint_slack t ~naive op_id =
  Netlist.endpoint_slack t.net ~view:(if naive then Netlist.Naive else Netlist.Accurate) op_id

(** {2 Binding} *)

(** Inter-iteration dependency check (modulo constraint): for an edge with
    distance [d], consumer step [sc] must satisfy
    [sc >= sp - d*II + 1] where [sp] is the producer's finishing step. *)
let modulo_ok t ~op_id ~step ~finish =
  let ii = Region.ii t.region in
  let ok_in =
    List.for_all
      (fun e ->
        e.Dfg.distance = 0
        ||
        match Netlist.placement t.net e.Dfg.src with
        | Some pl -> step >= pl.pl_finish - (e.Dfg.distance * ii) + 1
        | None -> true)
      (Dfg.in_edges t.dfg op_id)
  in
  let ok_out =
    List.for_all
      (fun e ->
        e.Dfg.distance = 0
        ||
        match Netlist.placement t.net e.Dfg.dst with
        | Some pl -> pl.pl_step >= finish - (e.Dfg.distance * ii) + 1
        | None -> true)
      (Dfg.out_edges t.dfg op_id)
  in
  ok_in && ok_out

(** Cheap feasibility screen before the full trial binding: the op's own
    endpoint path on [inst] (inputs via the grown sharing mux, instance
    delay, register mux, setup).  Returns the estimated slack; a negative
    value means the full trial would reject too, so callers skip it.
    Collateral effects on other bound ops are not screened — the trial
    still catches those. *)
let quick_slack t (op : Dfg.op) ~step ~inst_id =
  let i = Netlist.find_inst t.net inst_id in
  let d = Library.delay t.lib i.rtype in
  let data =
    List.fold_left
      (fun acc e ->
        let a = Netlist.source_arrival t.net ~step ~view:Netlist.Accurate e in
        (* size the mux by the port's distinct sources after the
           hypothetical bind — a source already feeding this port on the
           instance adds no mux input *)
        let inputs = Netlist.mux_inputs_with t.net i ~port:e.Dfg.port ~src:e.Dfg.src in
        max acc (a +. Library.mux_delay t.lib ~inputs))
      t.lib.Library.ff_clk_q
      (Dfg.in_edges t.dfg op.Dfg.id)
  in
  let g = Netlist.guard_arrival t.net ~step ~view:Netlist.Accurate op in
  t.clock_ps -. (max (data +. d) g +. Netlist.reg_mux_delay t.net +. t.lib.Library.ff_setup)

exception Fail of Restraint.fail

(** Attempt to bind [op] at [step] on [inst_opt] ([None] for wire and port
    ops).  The candidate runs inside a netlist transaction: on failure the
    trial is rolled back and the state is left untouched. *)
let try_bind t (op : Dfg.op) ~step ~inst_opt : (unit, Restraint.fail) result =
  let net = t.net in
  let lat = op_latency t op in
  let finish = step + lat - 1 in
  try
    if finish > t.region.Region.n_steps - 1 then raise (Fail Restraint.F_window);
    (match op.Dfg.anchor with
    | Some a when a <> step -> raise (Fail Restraint.F_anchor)
    | _ -> ());
    if not (modulo_ok t ~op_id:op.Dfg.id ~step ~finish) then raise (Fail Restraint.F_dep);
    (* resource-specific checks *)
    let inst = Option.map (Netlist.find_inst net) inst_opt in
    (match inst with
    | Some i ->
        if Hashtbl.mem t.forbidden (op.Dfg.id, i.inst_id) then raise (Fail Restraint.F_forbidden);
        (match Resource.of_op t.dfg op with
        | Some need when not (Resource.fits ~need ~have:i.rtype) ->
            if not (Resource.can_merge need i.rtype) then
              raise (Fail (Restraint.F_busy i.rtype))
        | _ -> ());
        (* user-dedicated instances: a dedicated op tolerates no cohabitant
           in any state, and instances already hosting a dedicated op admit
           nobody else *)
        if Hashtbl.mem t.dedicated op.Dfg.id && i.bound <> [] then
          raise (Fail (Restraint.F_busy i.rtype));
        if List.exists (fun o -> Hashtbl.mem t.dedicated o) i.bound then
          raise (Fail (Restraint.F_busy i.rtype));
        (* busy check across occupied steps, honouring edge equivalence and
           predicate orthogonality *)
        for s = step to finish do
          let others = Netlist.busy_ops net i.inst_id s in
          if
            List.exists
              (fun o ->
                not (Guard.mutually_exclusive (Dfg.find t.dfg o).Dfg.guard op.Dfg.guard))
              others
          then raise (Fail (Restraint.F_busy i.rtype))
        done;
        (* cheap endpoint screen before the expensive trial (timing-aware
           mode only; the naive ablation stays blind to mux effects) *)
        if t.timing_aware && i.bound <> [] then begin
          let sl = quick_slack t op ~step ~inst_id:i.inst_id in
          if sl < -0.001 then raise (Fail (Restraint.F_slack sl))
        end;
        (* structural combinational cycles *)
        if lat = 1 then
          List.iter
            (fun j ->
              if Netlist.would_close_cycle net ~src:j ~dst:i.inst_id then
                raise (Fail (Restraint.F_cycle i.inst_id)))
            (Netlist.chain_source_insts net op.Dfg.id ~step)
    | None -> ());
    (* which ports of the instance will gain an effective mux input from
       this bind — measured against the committed mux caches BEFORE the
       trial mutates them.  A port whose effective input count is
       unchanged keeps its mux delay bit-identical, so ops reading only
       such ports keep their arrivals and need no re-timing. *)
    let widens =
      match inst with
      | None -> false
      | Some i -> (
          match Resource.of_op t.dfg op with
          | Some need -> not (Resource.fits ~need ~have:i.rtype)
          | None -> false)
    in
    let changed_ports =
      match inst with
      | Some i when not widens ->
          (* first-edge-per-port semantics, any distance — exactly the
             sources the attach cache update inserts *)
          List.filter_map
            (fun e ->
              if
                Dfg.input t.dfg op.Dfg.id ~port:e.Dfg.port = Some e
                && Netlist.mux_inputs_with net i ~port:e.Dfg.port ~src:e.Dfg.src
                   <> Netlist.mux_inputs net i ~port:e.Dfg.port
              then Some e.Dfg.port
              else None)
            (Dfg.in_edges t.dfg op.Dfg.id)
          |> List.sort_uniq compare
      | _ -> []
    in
    (* saturation screen: when the grown mux provably pushes a cohabitant
       below tolerance — and strictly below the new op's own slack — the
       trial's busy rejection is already decided, so skip the whole
       transaction *)
    (match inst with
    | Some i
      when changed_ports <> []
           && Netlist.screen_busy_reject net ~decision:(decision_view t) ~op ~step ~finish
                ~inst:i ~changed_ports ->
        raise (Fail (Restraint.F_busy i.rtype))
    | _ -> ());
    (* --- trial placement inside a netlist transaction --- *)
    Netlist.begin_trial net;
    Netlist.place net op.Dfg.id ~step ~finish ~inst_opt;
    (match inst with
    | Some i ->
        (match Resource.of_op t.dfg op with
        | Some need when not (Resource.fits ~need ~have:i.rtype) ->
            Netlist.set_rtype net i (Resource.merge need i.rtype)
        | _ -> ());
        Netlist.attach net i op.Dfg.id;
        Netlist.occupy net ~inst_id:i.inst_id ~step ~finish op.Dfg.id
    | None -> ());
    (* arrivals: the new op, then every cohabitant whose inputs the bind
       actually re-times (a widened rtype re-times all of them; a grown
       port mux re-times the ops reading that port), then downstream
       chains via the propagation worklist.  Cohabitants whose ports are
       untouched keep their committed arrivals — and, inductively, their
       non-negative slack — so dropping them from the seeds changes
       neither the worst slack nor the accept/reject decision.  The
       induction breaks if a [force_bind] smuggled in a negative-slack op,
       so [has_forced] falls back to full re-timing. *)
    let seeds =
      match inst with
      | None -> [ op.Dfg.id ]
      | Some i when widens || t.has_forced -> (
          match i.bound with
          | o :: _ when o = op.Dfg.id -> i.bound
          | b -> op.Dfg.id :: List.filter (fun o -> o <> op.Dfg.id) b)
      | Some _ when changed_ports = [] -> [ op.Dfg.id ]
      | Some i ->
          op.Dfg.id
          :: List.filter
               (fun o ->
                 o <> op.Dfg.id
                 && List.exists
                      (fun p -> Dfg.input t.dfg o ~port:p <> None)
                      changed_ports)
               i.bound
    in
    let worst_slack, worst_op = Netlist.propagate net ~decision:(decision_view t) seeds in
    if worst_slack < -0.001 then begin
      Netlist.rollback net;
      (* a violation on an op already bound means this instance cannot
         absorb one more source: the resource, not the timing of the new
         op, is the limiting factor *)
      if worst_op <> op.Dfg.id then
        Error
          (Restraint.F_busy
             (match inst with
             | Some i -> i.rtype
             | None ->
                 Option.value (Resource.of_op t.dfg op)
                   ~default:{ Resource.rclass = Opkind.R_wire; in_widths = []; out_width = 1 }))
      else Error (Restraint.F_slack worst_slack)
    end
    else begin
      Netlist.commit net;
      (* commit chain edges *)
      (match inst with
      | Some i ->
          if lat = 1 then
            List.iter
              (fun j -> Netlist.add_chain_edge net ~src:j ~dst:i.inst_id)
              (Netlist.chain_source_insts net op.Dfg.id ~step)
      | None -> ());
      Ok ()
    end
  with Fail f -> Error f

(** Re-apply a binding already vetted and committed by an earlier pass,
    skipping every feasibility check and the trial protocol.  [rtype] is
    the instance type the original bind left behind (after any width
    merge), so replay reproduces the widening without re-deriving it.  The
    arrival propagation seeds and the chain-edge recording are exactly
    those of the committing [try_bind], so the incremental timing state
    after a replayed prefix is bit-identical to the cold pass's.

    [propagate:false] applies only the structural mutation and leaves the
    arrivals stale; the caller must run one {!recompute_all} after the
    whole replayed batch.  Sound because the arrival fixpoint is unique
    given the structure (combinational cycles are excluded by the cycle
    detector), so one sweep over the final structure lands on the same
    state as per-bind propagation. *)
let replay_bind t ?(propagate = true) (op : Dfg.op) ~step ~finish ~inst_opt ~rtype =
  let net = t.net in
  Netlist.place net op.Dfg.id ~step ~finish ~inst_opt;
  let inst = Option.map (Netlist.find_inst net) inst_opt in
  (match inst with
  | Some i ->
      (match rtype with Some rt -> Netlist.set_rtype net i rt | None -> ());
      Netlist.attach net i op.Dfg.id;
      Netlist.occupy net ~inst_id:i.inst_id ~step ~finish op.Dfg.id
  | None -> ());
  if propagate then begin
    let seeds =
      match inst with
      | None -> [ op.Dfg.id ]
      | Some i -> (
          match i.bound with
          | o :: _ when o = op.Dfg.id -> i.bound
          | b -> op.Dfg.id :: List.filter (fun o -> o <> op.Dfg.id) b)
    in
    ignore (Netlist.propagate net ~decision:(decision_view t) seeds)
  end;
  match inst with
  | Some i ->
      if op_latency t op = 1 then
        List.iter
          (fun j -> Netlist.add_chain_edge net ~src:j ~dst:i.inst_id)
          (Netlist.chain_source_insts net op.Dfg.id ~step)
  | None -> ()

(** Unconditionally record a placement, skipping every feasibility check
    (timing, busy tables still maintained, cycles ignored).  Used to import
    schedules produced by external engines — the baseline comparators —
    into the accurate timing/area reporting machinery. *)
let force_bind t (op : Dfg.op) ~step ~inst_opt =
  t.has_forced <- true;
  let net = t.net in
  let lat = op_latency t op in
  let finish = step + lat - 1 in
  Netlist.place net op.Dfg.id ~step ~finish ~inst_opt;
  (match inst_opt with
  | Some i ->
      let inst = Netlist.find_inst net i in
      (match Resource.of_op t.dfg op with
      | Some need when not (Resource.fits ~need ~have:inst.rtype) ->
          if Resource.can_merge need inst.rtype then
            Netlist.set_rtype net inst (Resource.merge need inst.rtype)
          else
            Netlist.set_rtype net inst
              {
                Resource.rclass = inst.rtype.Resource.rclass;
                in_widths = List.map2 max inst.rtype.Resource.in_widths need.Resource.in_widths;
                out_width = max inst.rtype.Resource.out_width need.Resource.out_width;
              }
      | _ -> ());
      Netlist.attach net inst op.Dfg.id;
      Netlist.occupy net ~inst_id:i ~step ~finish op.Dfg.id
  | None -> ());
  ignore (Netlist.propagate net ~decision:(decision_view t) [ op.Dfg.id ])

(** Refresh every arrival after a batch of [force_bind]s. *)
let recompute_all t = Netlist.recompute_all t.net

(** Instances compatible with [op]: an instance already wide enough always
    qualifies ([fits]); otherwise the width-merge rule decides whether the
    instance may be widened to host the op.  Preferred order: exact-fit
    first, then least-loaded. *)
let compatible_insts t (op : Dfg.op) =
  match Resource.of_op t.dfg op with
  | None -> []
  | Some need ->
      (* decorate-sort-undecorate: [fits] and the load are evaluated once
         per instance, not once per comparison; the stable sort on equal
         keys preserves the instance-list order, as before *)
      (Netlist.insts t.net)
      |> List.filter_map (fun i ->
             let fits = Resource.fits ~need ~have:i.rtype in
             if fits || Resource.can_merge need i.rtype then
               Some (((if fits then 0 else 1), List.length i.bound), i)
             else None)
      |> List.stable_sort (fun (ka, _) (kb, _) -> compare ka kb)
      |> List.map snd

(** Worst accurate endpoint slack over all placed ops. *)
let worst_slack t = Netlist.worst_slack t.net

(** {2 Estimation hooks for the expert system}

    After a failed pass, the expert system asks "would this action have
    saved the failing binding?"  These estimators answer using the arrival
    state the pass left behind. *)

(** Estimated (data arrival, guard arrival, exec delay, endpoint overhead)
    for an unplaced op hypothetically placed at [step].  The data arrival
    includes a 2-input sharing mux when the op's class will be shared. *)
let estimate t (op : Dfg.op) ~step =
  let shared =
    match Resource.of_op t.dfg op with
    | None -> false
    | Some need ->
        let n_ops =
          match Hashtbl.find_opt t.class_ops_memo need with
          | Some n -> n
          | None ->
              let n =
                List.length
                  (List.filter
                     (fun o ->
                       match Resource.of_op t.dfg o with
                       | Some rt -> Resource.can_merge rt need
                       | None -> false)
                     (Region.member_ops t.region))
              in
              Hashtbl.add t.class_ops_memo need n;
              n
        in
        let n_insts =
          List.length
            (List.filter (fun i -> Resource.can_merge i.rtype need) (Netlist.insts t.net))
        in
        n_ops > n_insts
  in
  let mux = if shared then Library.mux_delay t.lib ~inputs:2 else 0.0 in
  let data =
    List.fold_left
      (fun acc e ->
        max acc (Netlist.source_arrival t.net ~step ~view:Netlist.Accurate e +. mux))
      (match op.Dfg.kind with Opkind.Const _ -> 0.0 | _ -> t.lib.Library.ff_clk_q)
      (Dfg.in_edges t.dfg op.Dfg.id)
  in
  let guard = Netlist.guard_arrival t.net ~step ~view:Netlist.Accurate op in
  let d = Netlist.exec_delay t.net op None in
  let overhead = Netlist.reg_mux_delay t.net +. t.lib.Library.ff_setup in
  (data, guard, d, overhead)

(** Would [op] meet timing at [step] on a fresh resource instance?
    [speculated] drops the guard from the enable path. *)
let would_fit t (op : Dfg.op) ~step ~speculated =
  let data, guard, d, overhead = estimate t op ~step in
  let commit = if speculated then data +. d else max (data +. d) guard in
  commit +. overhead <= t.clock_ps +. 0.001

(** Is the failing path dominated by the guard's enable arrival (so that
    speculation, not resources, is the right fix)? *)
let guard_dominated t (op : Dfg.op) ~step =
  let data, guard, d, _ = estimate t op ~step in
  guard > data +. d +. 0.001

(** Would [op] meet timing on some {e existing} compatible instance if all
    its inputs were registered (i.e. at a fresh later step)?  False when
    every compatible instance's sharing muxes are already too slow — the
    case where adding states cannot help and adding a resource can.
    Deliberately conservative: the hypothetical step is unknown, so every
    port is charged one extra mux input regardless of source identity. *)
let would_fit_existing t (op : Dfg.op) =
  let overhead = Netlist.reg_mux_delay t.net +. t.lib.Library.ff_setup in
  match Resource.of_op t.dfg op with
  | None -> true
  | Some need ->
      List.exists
        (fun i ->
          (Resource.fits ~need ~have:i.rtype || Resource.can_merge need i.rtype)
          &&
          let d = Library.delay t.lib i.rtype in
          let worst_mux =
            List.fold_left
              (fun acc port ->
                max acc
                  (Library.mux_delay t.lib ~inputs:(Netlist.mux_inputs t.net i ~port + 1)))
              0.0
              (List.init (List.length i.rtype.Resource.in_widths) Fun.id)
          in
          t.lib.Library.ff_clk_q +. worst_mux +. d +. overhead <= t.clock_ps +. 0.001)
        (Netlist.insts t.net)
