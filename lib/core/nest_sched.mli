(** Hierarchical bottom-up scheduling of counted loop nests: the
    conservative alternative to frontend flattening.  The inner loop is
    scheduled first (pipelined at its II); the outer dimension is then
    re-scheduled sequentially with the whole inner loop as a
    fixed-latency multicycle super-op of latency
    [span = (trip-1)*II + LI].  The outer region carries the
    hierarchical {!Hls_ir.Region.nest} annotation with its loop-carried
    closures tagged [dim = 1], exercising {!Pipeline.validate}'s
    per-dimension modulo constraint. *)

type t = {
  ns_inner : Scheduler.t;
  ns_outer : Scheduler.t;
  ns_info : Hls_frontend.Nest.info;
  ns_span : int;  (** cycles one full inner-loop execution occupies *)
  ns_inner_ii : int;  (** inner kernel initiation interval *)
  ns_outer_ii : int;  (** achieved outer initiation interval (= outer LI) *)
  ns_per_dim_iis : int list;  (** outermost first: [outer; inner] *)
  ns_latency : int;  (** total nest latency estimate, cycles *)
}

val span : trip:int -> ii:int -> li:int -> int
(** [(trip-1)*II + LI]: cycles one full loop execution occupies. *)

val compose :
  ?inner_ii:int ->
  ?opts:Scheduler.options ->
  lib:Hls_techlib.Library.t ->
  clock_ps:float ->
  Hls_frontend.Ast.design ->
  (t, string) result
(** Schedule a 2-level nest bottom-up; [Error] when the design has no
    eligible nest or either schedule fails.  [inner_ii] overrides the
    inner loop's source II request. *)

val summary : t -> string
(** One-line report: inner II, span, outer LI, per-dimension IIs. *)
