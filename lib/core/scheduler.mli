(** The pass scheduler (Fig. 7) and the outer relaxation loop.

    A pass walks the control steps in order, binding the highest-priority
    ready operation with every candidate vetted by the netlist timing
    model; failures at the end of an op's life span join [Failed_ops] and
    turn into restraints.  The outer loop re-runs passes under
    expert-guided relaxation.  Pipelining needs only the two Section V
    extensions (equivalence-class busy tables and SCC stage windows), so
    the same pass serves sequential and pipelined regions. *)

open Hls_ir
open Hls_techlib

type options = {
  timing_aware : bool;  (** accurate netlist view vs naive additive (ablation) *)
  expert : Expert.options;
  max_passes : int;
  priority_weights : Priority.weights;
  dedicated_ops : int list;
      (** user constraint: ops that must own their resource instance *)
  warm_start : bool;
      (** reuse pass-invariant analysis across relaxation passes, pick
          ready ops through the lazy-deletion heap, and replay the
          unaffected schedule prefix after a local expert action; disable
          for the cold-restart baseline *)
  tolerate_scc_slack : bool;
      (** Table 4 ablation: with SCC moves disabled, force-bind SCC members
          at their window and let downstream sizing absorb the slack *)
  seed_latency_floor : bool;
      (** start LI at the resource-implied lower bound; disable to follow
          the paper's one-state-at-a-time narratives *)
  max_actions : int;
      (** budget on total relaxation actions across all passes *)
  timeout_s : float option;
      (** wall-clock budget for the whole relaxation loop *)
  priority_boosts : (int * float) list;
      (** feedback hints: additive priority-score deltas per op (mined
          critical-subgraph cones); stale op ids are skipped *)
  speculated_ops : int list;  (** feedback hints: ops to pre-speculate *)
  forbidden_pairs : (int * int) list;
      (** feedback hints: (op, inst) pairs to pre-forbid *)
  scc_stage_hints : (int * int) list;
      (** feedback hints: (scc index, stage) pre-pins (pipelined regions) *)
  resource_floors : (Resource.t * int) list;
      (** feedback hints: minimum instance counts, topped up at start *)
  latency_floor : int option;
      (** feedback hint: start LI at least here (clamped to the region's
          max steps; ignored for pipelined regions) *)
}

val default_options : options

type t = {
  s_region : Region.t;
  s_li : int;  (** final latency interval *)
  s_binding : Binding.t;
  s_passes : int;
  s_actions : string list;  (** relaxations applied, oldest first *)
  s_scc_stages : (int list * int) list;  (** each SCC's ops and stage *)
  s_sched_time_s : float;
  s_warm_passes : int;  (** passes that replayed a schedule prefix *)
  s_cold_passes : int;  (** passes re-vetted from step 0 *)
  s_hints_applied : int;  (** feedback hints actually applied at start *)
}

type error = {
  e_message : string;
  e_code : string;
      (** stable machine code: ["overconstrained"], ["latency_bound"],
          ["recurrence_infeasible"], ["budget_passes"], ["budget_actions"],
          ["budget_wallclock"] or ["internal"] *)
  e_restraints : Restraint.t list;
  e_passes : int;
  e_actions : string list;
  e_budget : Hls_diag.Diag.budget option;  (** which budget tripped, if any *)
}

val set_jobs : int -> unit
(** Worker count for region-parallel analysis (independent SCC groups
    checked on a shared domain pool).  Results are identical for every
    count — the per-SCC computation is pure and the merge order is the
    SCC index order; 1 (the default) runs fully sequentially. *)

type stats = {
  st_passes : int;  (** scheduling passes run by the relaxation loop *)
  st_actions : int;  (** expert relaxation actions applied *)
  st_queries : int;
      (** netlist timing-engine queries issued by the binder — the
          paper's "hottest query of the timing engine" *)
  st_trials : int;  (** netlist what-if transactions opened *)
  st_commits : int;  (** trials that ended in a commit *)
  st_rollbacks : int;  (** trials rolled back by a slack violation *)
  st_visits : int;
      (** cells examined by bounded arrival propagation — stays well below
          the fanout cone when arrivals are unchanged *)
  st_sched_s : float;  (** wall-clock seconds inside the scheduler *)
  st_warm_passes : int;  (** passes served by warm-start prefix replay *)
  st_cold_passes : int;  (** passes run from a cold restart *)
  st_hints : int;  (** feedback hints applied at schedule start *)
}

val stats : t -> stats
(** Profiling counters of a completed schedule (consumed by the
    design-space exploration engine). *)

val placement : t -> int -> Binding.placement option
val step_of : t -> int -> int
val ops_on_step : t -> int -> int list

type pass_outcome = Pass_ok | Pass_failed of Restraint.t list

(** One pass-log entry: enough to re-apply the event structurally on a
    warm start (binds carry the committed placement and post-merge
    instance type; restraints carry the fail so a fresh weight-mutable
    {!Restraint.t} can be minted on replay). *)
type pass_event =
  | Ev_bind of {
      ev_op : int;
      ev_step : int;
      ev_finish : int;
      ev_inst : int option;
      ev_rtype : Resource.t option;
    }
  | Ev_restraint of { ev_op : int; ev_step : int; ev_fail : Restraint.fail; ev_fatal : bool }

val run_pass :
  opts:options ->
  trace:Trace.t option ->
  ctx:Pass_ctx.t ->
  binding:Binding.t ->
  aa:Asap_alap.t ->
  scc_of:(int -> int option) ->
  ?scc_members:int list list ->
  ?warm:pass_event list * int ->
  ?keep_prealloc:bool ->
  scc_stage_base:(int -> int option) ->
  scc_stage_local:int option array ->
  Region.t ->
  pass_outcome * pass_event list
(** One SCHEDULE_PASS (exposed for tests and custom drivers).  [ctx] is
    the region's pass-invariant context with scores already refreshed for
    [aa].  [warm] is [(previous pass's event log, first dirty step)]:
    events strictly before the dirty step are replayed structurally
    instead of re-vetted.  [keep_prealloc] skips the per-pass
    prealloc-shared recompute (sound when no instance was added since the
    previous pass).  Returns the outcome and this pass's event log. *)

val schedule :
  ?opts:options ->
  ?trace:Trace.t ->
  lib:Library.t ->
  clock_ps:float ->
  Region.t ->
  (t, error) result
(** Schedule and bind a region: initial resource estimation at the latency
    upper bound, then passes from the lower bound under relaxation. *)

val to_table : t -> string list list
(** The paper's Table 2 rendering: resources × states. *)
