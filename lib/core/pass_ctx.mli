(** Pass-invariant scheduling context, computed once per region and reused
    across every relaxation pass.

    A relaxation pass re-runs the whole SCHEDULE_PASS after each expert
    action (Fig. 7), but most of what the pass consults never changes
    between passes: the member list, the scheduling-predecessor and
    dependent graphs, fanout-cone sizes, and resource class keys are pure
    functions of the region's DFG.  Priority scores depend additionally on
    the ASAP/ALAP intervals, which only move when the latency interval or
    an SCC window moves (add-state / move-SCC actions) — so they are cached
    too and refreshed only when the interval analysis itself is refreshed
    ({!refresh_scores} keys on the physical identity of the [aa] value). *)

open Hls_ir

type t = {
  ctx_members : Dfg.op list;
  ctx_n_members : int;
  ctx_preds : (int, int list) Hashtbl.t;
      (** op -> distance-0 scheduling predecessors (data + guard) *)
  ctx_deps : (int, int list) Hashtbl.t;  (** reverse of [ctx_preds] *)
  ctx_fanout : int -> int;  (** fanout-cone size, precomputed per op *)
  ctx_class_key : (int, (Opkind.rclass * int list) option) Hashtbl.t;
      (** bucketed resource-class key for the busy-class memo *)
  ctx_scores : (int, float) Hashtbl.t;  (** priority scores under the last aa *)
  mutable ctx_scores_aa : Asap_alap.t option;
      (** the aa value [ctx_scores] was computed from (physical identity) *)
}

val create : Region.t -> t
(** Build every aa-independent table.  Scores are left empty until the
    first {!refresh_scores}. *)

val refresh_scores :
  ?boosts:(int * float) list -> t -> weights:Priority.weights -> aa:Asap_alap.t -> unit
(** Recompute priority scores from [aa]; a no-op when [aa] is physically
    the value the scores already reflect.  [boosts] are additive feedback
    deltas layered on top of the base score — they must be constant across
    every call that shares this context (they are per-schedule hints), or
    the aa-identity memo would serve stale sums. *)
