(** Simultaneous scheduling-and-binding policy (Section IV.B).

    Binding assigns an operation both a control step and a resource
    instance.  The structural netlist and the incremental timing engine
    live in [Hls_netlist.Netlist]; this module layers the paper's policy on
    top: restraint checks (window, anchors, modulo dependencies, forbidden
    pairs, dedication, busy-table conflicts, structural cycles), the cheap
    {!quick_slack} screen, the trial protocol (each candidate binding runs
    inside a netlist transaction, committed or rolled back on the worst
    slack it produces), and the expert system's estimation hooks.

    Two arrival views are kept per bound op: the accurate one (all mux
    delays — what the paper's netlist queries return) and a naive additive
    one; [timing_aware] selects which gates decisions, while the accurate
    view always feeds the final timing report (the basis of the
    timing-awareness ablation). *)

open Hls_ir
open Hls_techlib
module Netlist = Hls_netlist.Netlist

type inst = Netlist.inst = {
  inst_id : int;
  mutable rtype : Resource.t;
  mutable bound : int list;  (** bound op ids, most recent first *)
  mutable prealloc_shared : bool;
  added_by_expert : bool;
  mutable mux_cache : int list array option;
  mutable mux_delays : float array option;
}

type placement = Netlist.placement = { pl_step : int; pl_finish : int; pl_inst : int option }

type t = {
  net : Netlist.t;  (** the datapath netlist + incremental timing engine *)
  region : Region.t;
  lib : Library.t;
  clock_ps : float;
  dfg : Dfg.t;
  forbidden : (int * int, unit) Hashtbl.t;  (** (op, inst) exclusions *)
  dedicated : (int, unit) Hashtbl.t;
      (** user constraint: these ops own their instance outright *)
  timing_aware : bool;
  mutable has_forced : bool;
      (** a {!force_bind} ran since the last {!reset_pass}: committed ops
          may carry negative slack, so the narrowed-seed fast path in
          {!try_bind} is disabled for the rest of the pass *)
  class_ops_memo : (Resource.t, int) Hashtbl.t;
      (** member-op count per resource need (static region membership) *)
}

val create : ?timing_aware:bool -> lib:Library.t -> clock_ps:float -> Region.t -> t

val decision_view : t -> Netlist.view
(** The arrival view gating this binder's decisions ([Accurate] unless the
    timing-awareness ablation is on). *)

val add_inst : ?added_by_expert:bool -> t -> Resource.t -> inst
val find_inst : t -> int -> inst

val reset_pass : ?keep_prealloc:bool -> t -> unit
(** Clear pass-local netlist state (placements, busy, arrivals, chain
    graph) while keeping the resource set and forbidden pairs; recompute
    which instances pre-allocate sharing muxes. *)

val placement : t -> int -> placement option
val is_placed : t -> int -> bool
val slot : t -> int -> int
val op_latency : t -> Dfg.op -> int
val is_multicycle : t -> Dfg.op -> bool

val endpoint_slack : t -> naive:bool -> int -> float
(** Registered-endpoint slack of a placed op in the chosen view (thin
    wrapper over [Netlist.endpoint_slack]). *)

val modulo_ok : t -> op_id:int -> step:int -> finish:int -> bool
val quick_slack : t -> Dfg.op -> step:int -> inst_id:int -> float
(** Cheap endpoint screen before the full trial: the op's own path on the
    instance, with each input mux sized by the port's distinct sources
    after the hypothetical bind. *)

val try_bind : t -> Dfg.op -> step:int -> inst_opt:int option -> (unit, Restraint.fail) result
(** Attempt a binding; on failure the netlist transaction is rolled back
    and the reason returned.  A trial that breaks an {e already-bound} op's
    timing (the sharing mux grew) reports [F_busy] — the instance is
    saturated. *)

val replay_bind :
  t ->
  ?propagate:bool ->
  Dfg.op ->
  step:int ->
  finish:int ->
  inst_opt:int option ->
  rtype:Resource.t option ->
  unit
(** Re-apply a binding vetted and committed by an earlier pass (warm-start
    prefix replay): no feasibility checks, no trial — structural mutation
    plus the same arrival propagation the committing bind performed.
    [rtype] is the instance type the original bind left behind.
    [propagate] (default [true]): when [false], only the structural
    mutation is applied — the caller batches the whole replayed prefix and
    runs one {!recompute_all} at the end, reaching the same (unique)
    arrival fixpoint in a single sweep. *)

val force_bind : t -> Dfg.op -> step:int -> inst_opt:int option -> unit
(** Record a placement unconditionally (imports of external schedules and
    the Table 4 ablation). *)

val recompute_all : t -> unit

val compatible_insts : t -> Dfg.op -> inst list
(** Candidate instances, exact-fit then least-loaded first. *)

val worst_slack : t -> float

val estimate : t -> Dfg.op -> step:int -> float * float * float * float
(** (data arrival, guard arrival, exec delay, endpoint overhead) for a
    hypothetical placement — the expert system's evidence. *)

val would_fit : t -> Dfg.op -> step:int -> speculated:bool -> bool
val would_fit_existing : t -> Dfg.op -> bool
val guard_dominated : t -> Dfg.op -> step:int -> bool
