(** The relaxation expert system (Sections IV.B and V): turns the failed
    pass's restraints into the corrective action with the best estimated
    gain — "Every action has an estimated cost, which is combined with the
    number of restraints solved by this action and the restraint weight.
    The action with the best estimated gain wins." *)

open Hls_ir
open Hls_techlib

type action =
  | Add_state
  | Add_resource of Resource.t * int  (** type and how many instances *)
  | Speculate of int
      (** drop an op's guard from its commit path (its enable arrival, not
          its data, dominated the failure) *)
  | Move_scc of int
      (** the paper's novel action: move a whole SCC one pipeline stage
          later ("this failure is distinguished from an ordinary negative
          slack failure") *)
  | Forbid of int * int  (** exclude a comb-cycle-closing (op, inst) pair *)

type options = {
  enable_scc_move : bool;  (** the Table 4 ablation switch *)
  enable_speculation : bool;
  enable_add_resource : bool;
  max_batch : int;
      (** cap on actions per pass from {!choose_many}: the winner plus at
          most [max_batch - 1] batched runner-ups *)
}

val default_options : options

val action_to_string : action -> string

val downstream : Dfg.t -> int list -> (int, unit) Hashtbl.t
(** Distance-0 downstream cone of a set of ops, inclusive. *)

val choose :
  allow_add_state:bool ->
  opts:options ->
  binding:Binding.t ->
  region:Region.t ->
  restraints:Restraint.t list ->
  sccs:int list list ->
  scc_of:(int -> int option) ->
  scc_stage:(int -> int) ->
  (action * string) option
(** The single best action (with its explanation), or [None] when the
    portfolio is exhausted (specification overconstrained).  Resource
    additions are credited only for restraints the timing estimate says a
    fresh instance would actually solve — the paper's "a second multiplier
    does not help" reasoning. *)

val choose_many :
  allow_add_state:bool ->
  opts:options ->
  binding:Binding.t ->
  region:Region.t ->
  restraints:Restraint.t list ->
  sccs:int list list ->
  scc_of:(int -> int option) ->
  scc_stage:(int -> int) ->
  (action * string) list
(** Batched variant for large designs: the winner plus runner-up resource
    additions of other starving types (each saves one full pass). *)
