(** Pipeline folding (Section V, Step II): equivalent control steps
    (congruent modulo II) fold onto single kernel states, each executing
    the union of their operations predicated by stage activity; the
    prologue fills stages one initiation interval apart, the epilogue
    drains, stalls freeze.  Folding is pure bookkeeping over a successful
    schedule — the scheduler already guaranteed the invariants
    {!validate} re-checks. *)

type t = {
  f_ii : int;
  f_li : int;
  f_stages : int;
  f_kernel : (int, int * int) Hashtbl.t;
      (** op -> (kernel state = step mod II, stage = step / II) *)
}

val fold : Scheduler.t -> t
(** Identity fold (one stage) for sequential regions. *)

val kernel_state : t -> int -> (int * int) option

val ops_at : t -> state:int -> stage:int -> int list

val eff_distance : Hls_ir.Region.t -> Hls_ir.Dfg.edge -> int
(** Effective inter-iteration distance in the region's own (innermost)
    iterations: [distance * Region.stride region dim].  Equals the plain
    distance for ordinary ([dim = 0]) edges. *)

val modulo_slack : Hls_ir.Region.t -> ii:int -> Hls_ir.Dfg.edge -> int
(** Slack the (per-dimension) modulo constraint grants a loop-carried
    edge: [eff_distance * II].  The constraint itself is
    [step(dst) >= finish(src) - modulo_slack + 1]; an edge carried by an
    enclosing nest dimension closes once per stride kernel iterations and
    earns proportionally more slack. *)

val validate : Scheduler.t -> t -> string list
(** No same-instance collisions within a kernel state (up to guard
    exclusivity), every SCC within one stage, every loop-carried edge
    within the per-dimension modulo constraint (see {!modulo_slack}).
    Empty = clean. *)

val to_table : Scheduler.t -> t -> string list list
(** The paper's Fig. 5 rendering: kernel states × stages. *)
