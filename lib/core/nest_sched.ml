(** Hierarchical bottom-up scheduling of counted loop nests.

    The flattening path ({!Hls_frontend.Nest.flatten}) collapses a nest
    into one kernel and lets the ordinary scheduler run; this module is
    the {e conservative} alternative for imperfect nests whose prologue or
    epilogue must not share the inner kernel's II: schedule the inner loop
    first, then re-schedule the outer dimension with the whole inner loop
    standing in as a fixed-latency multicycle super-op.

    Bottom-up composition:

    + {!Hls_frontend.Nest.split} the design into an inner design (the
      inner loop in its natural surroundings) and an outer summary design
      where the inner loop is the black-box call
      [{!Hls_frontend.Nest.super_op_callee}];
    + schedule the inner design's main region (pipelined at the inner
      II); its {e span} — the cycles one full inner-loop execution
      occupies — is [(trip-1)*II + LI];
    + patch the super-op's latency to the span ({!Hls_ir.Dfg.set_kind})
      and schedule the outer region sequentially, its latency bound
      stretched to accommodate the span;
    + validate both folds; the outer region carries the hierarchical
      {!Hls_ir.Region.nest} annotation, and its loop-carried closure
      edges are tagged with the outer dimension ([carried_dim]), so
      {!Pipeline.validate} applies the per-dimension modulo constraint.

    The achieved per-dimension IIs are [outer LI] (one outer initiation
    per sequential body execution) and the inner kernel II.  Compare
    {!Hls_ir.Region.per_dim_iis} on the flattened path, where the outer
    dimension initiates every [kernel II x inner trip] cycles — flattening
    wins whenever pre/post are cheap enough to fold into the kernel. *)

open Hls_ir
open Hls_frontend
module Library = Hls_techlib.Library

type t = {
  ns_inner : Scheduler.t;
  ns_outer : Scheduler.t;
  ns_info : Nest.info;
  ns_span : int;  (** cycles one full inner-loop execution occupies *)
  ns_inner_ii : int;  (** inner kernel initiation interval *)
  ns_outer_ii : int;  (** achieved outer initiation interval (= outer LI) *)
  ns_per_dim_iis : int list;  (** outermost first: [outer; inner] *)
  ns_latency : int;  (** total nest latency estimate, cycles *)
}

let span ~trip ~ii ~li = ((trip - 1) * ii) + li

(** Schedule a 2-level nest bottom-up.  [inner_ii] overrides the inner
    loop's source II request (default: that request, or 1). *)
let compose ?inner_ii ?(opts = Scheduler.default_options) ~lib ~clock_ps (design : Ast.design) :
    (t, string) result =
  match Nest.split design with
  | None -> Error "no eligible 2-level counted nest at the top level"
  | Some (inner_d, outer_d, info) -> (
      let outer_dim, inner_dim =
        match info.Nest.ni_dims with
        | [ o; i ] -> (o, i)
        | _ -> invalid_arg "Nest_sched.compose: nest is not 2-level"
      in
      let ii =
        match inner_ii with
        | Some ii -> ii
        | None -> Option.value inner_dim.Nest.d_ii ~default:1
      in
      let elab_in = Elaborate.design inner_d in
      let region_in = Elaborate.main_region ~ii elab_in in
      match Scheduler.schedule ~opts ~lib ~clock_ps region_in with
      | Error e -> Error (Printf.sprintf "inner kernel: %s" e.Scheduler.e_message)
      | Ok sched_in -> (
          let inner_ii = Region.ii sched_in.Scheduler.s_region in
          let sp = span ~trip:inner_dim.Nest.d_trip ~ii:inner_ii ~li:sched_in.Scheduler.s_li in
          (* The outer summary: the inner loop is a fixed-latency super-op.
             Loop-carried closures are tagged with the outer dimension. *)
          let elab_out = Elaborate.design ~nest:`Unroll ~carried_dim:1 outer_d in
          let dfg = elab_out.Elaborate.cdfg.Cdfg.dfg in
          Dfg.iter_ops dfg (fun op ->
              match op.Dfg.kind with
              | Opkind.Call c when c.Opkind.callee = Nest.super_op_callee ->
                  Dfg.set_kind dfg op.Dfg.id
                    (Opkind.Call { c with Opkind.call_latency = sp })
              | _ -> ());
          match elab_out.Elaborate.loop with
          | None -> Error "outer summary design lost its loop"
          | Some li -> (
              let region_out =
                Region.create ~min_steps:1 ~max_steps:(sp + 64) ?continue_cond:li.Elaborate.li_continue
                  ?stall_cond:li.Elaborate.li_stall ~is_loop:true
                  ~source_waits:li.Elaborate.li_waits ~members:li.Elaborate.li_members
                  ~nest:(Nest.region_nest info ~flattened:false)
                  ~name:info.Nest.ni_flat_name dfg
              in
              match Scheduler.schedule ~opts ~lib ~clock_ps region_out with
              | Error e -> Error (Printf.sprintf "outer summary: %s" e.Scheduler.e_message)
              | Ok sched_out -> (
                  let check sched =
                    let fold = Pipeline.fold sched in
                    Pipeline.validate sched fold
                  in
                  match check sched_in @ check sched_out with
                  | _ :: _ as errs ->
                      Error ("fold invariants: " ^ String.concat "; " errs)
                  | [] ->
                      let outer_ii = sched_out.Scheduler.s_li in
                      Ok
                        {
                          ns_inner = sched_in;
                          ns_outer = sched_out;
                          ns_info = info;
                          ns_span = sp;
                          ns_inner_ii = inner_ii;
                          ns_outer_ii = outer_ii;
                          ns_per_dim_iis = [ outer_ii; inner_ii ];
                          ns_latency = outer_dim.Nest.d_trip * outer_ii;
                        }))))

let summary t =
  Printf.sprintf "nest %s: inner II=%d span=%d outer LI=%d per-dim II=[%s] latency=%d"
    t.ns_info.Nest.ni_flat_name t.ns_inner_ii t.ns_span t.ns_outer_ii
    (String.concat "x" (List.map string_of_int t.ns_per_dim_iis))
    t.ns_latency
