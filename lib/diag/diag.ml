(** Typed diagnostics for the HLS flow.  See the interface for the
    contract: the flow returns these instead of raising. *)

type phase =
  | Frontend
  | Elaborate
  | Schedule
  | Fold
  | Check
  | Report
  | Verify
  | Explore
  | Serve
  | Feedback

type severity = Info | Warning | Error | Fatal

type budget =
  | B_passes of int
  | B_actions of int
  | B_wallclock of float

type t = {
  d_phase : phase;
  d_severity : severity;
  d_code : string;
  d_message : string;
  d_restraints : string list;
  d_actions : string list;
  d_passes : int;
  d_budget : budget option;
}

let make ?(severity = Error) ?(code = "error") ?(restraints = []) ?(actions = []) ?(passes = 0)
    ?budget ~phase fmt =
  Printf.ksprintf
    (fun m ->
      {
        d_phase = phase;
        d_severity = severity;
        d_code = code;
        d_message = m;
        d_restraints = restraints;
        d_actions = actions;
        d_passes = passes;
        d_budget = budget;
      })
    fmt

let error ?severity ?code ?restraints ?actions ?passes ?budget ~phase fmt =
  Printf.ksprintf
    (fun m ->
      Stdlib.Error
        (make ?severity ?code ?restraints ?actions ?passes ?budget ~phase "%s" m))
    fmt

let phase_to_string = function
  | Frontend -> "frontend"
  | Elaborate -> "elaborate"
  | Schedule -> "schedule"
  | Fold -> "fold"
  | Check -> "check"
  | Report -> "report"
  | Verify -> "verify"
  | Explore -> "explore"
  | Serve -> "serve"
  | Feedback -> "feedback"

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

let budget_to_string = function
  | B_passes n -> Printf.sprintf "pass budget exhausted (%d passes)" n
  | B_actions n -> Printf.sprintf "action budget exhausted (%d actions)" n
  | B_wallclock s -> Printf.sprintf "wall-clock budget exceeded (%.1f s)" s

let to_string d =
  let budget = match d.d_budget with None -> "" | Some b -> "; " ^ budget_to_string b in
  let passes = if d.d_passes > 0 then Printf.sprintf "; %d passes" d.d_passes else "" in
  let actions =
    match d.d_actions with
    | [] -> ""
    | a -> Printf.sprintf "; %d actions: %s" (List.length a) (String.concat " / " a)
  in
  Printf.sprintf "[%s] %s (%s): %s%s%s%s" (phase_to_string d.d_phase)
    (severity_to_string d.d_severity) d.d_code d.d_message passes budget actions

(* --- hand-rolled JSON (the toolchain ships no JSON library) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let json_list items = "[" ^ String.concat "," (List.map json_string items) ^ "]"

let budget_to_json = function
  | None -> "null"
  | Some (B_passes n) -> Printf.sprintf "{\"kind\":\"passes\",\"limit\":%d}" n
  | Some (B_actions n) -> Printf.sprintf "{\"kind\":\"actions\",\"limit\":%d}" n
  | Some (B_wallclock s) -> Printf.sprintf "{\"kind\":\"wallclock\",\"limit_s\":%g}" s

let to_json d =
  Printf.sprintf
    "{\"phase\":%s,\"severity\":%s,\"code\":%s,\"message\":%s,\"passes\":%d,\"budget\":%s,\"actions\":%s,\"restraints\":%s}"
    (json_string (phase_to_string d.d_phase))
    (json_string (severity_to_string d.d_severity))
    (json_string d.d_code) (json_string d.d_message) d.d_passes
    (budget_to_json d.d_budget) (json_list d.d_actions) (json_list d.d_restraints)
