(** Typed diagnostics for the HLS flow.

    Every failure anywhere in the flow — frontend, elaboration, the
    schedule/bind engine, folding, post-schedule auditing, reporting or
    verification — is carried as a {!t}: a phase, a severity, a stable
    machine-readable code, the human message, and (for scheduling
    failures) the restraint provenance, the relaxation actions attempted,
    the pass count and which budget tripped.  The flow never raises; it
    returns these. *)

type phase =
  | Frontend
  | Elaborate
  | Schedule
  | Fold
  | Check
  | Report
  | Verify
  | Explore
  | Serve
  | Feedback
      (** the subgraph-extraction feedback loop (hint mining / application) *)

type severity = Info | Warning | Error | Fatal

type budget =
  | B_passes of int  (** relaxation pass budget exhausted at this count *)
  | B_actions of int  (** relaxation action budget exhausted at this count *)
  | B_wallclock of float  (** wall-clock budget (seconds) exceeded *)

type t = {
  d_phase : phase;
  d_severity : severity;
  d_code : string;  (** stable machine code, e.g. ["overconstrained"] *)
  d_message : string;
  d_restraints : string list;  (** restraint provenance, rendered *)
  d_actions : string list;  (** relaxation actions attempted, oldest first *)
  d_passes : int;  (** scheduling passes run before the failure *)
  d_budget : budget option;  (** which budget tripped, if any *)
}

val make :
  ?severity:severity ->
  ?code:string ->
  ?restraints:string list ->
  ?actions:string list ->
  ?passes:int ->
  ?budget:budget ->
  phase:phase ->
  ('a, unit, string, t) format4 ->
  'a
(** [make ~phase fmt ...] builds a diagnostic; severity defaults to
    [Error] and code to ["error"]. *)

val error : ?severity:severity -> ?code:string -> ?restraints:string list ->
  ?actions:string list -> ?passes:int -> ?budget:budget -> phase:phase ->
  ('a, unit, string, (_, t) result) format4 -> 'a
(** Like {!make} but wrapped in [Stdlib.Error], for result pipelines. *)

val phase_to_string : phase -> string
val severity_to_string : severity -> string
val budget_to_string : budget -> string

val to_string : t -> string
(** One human-readable line: [phase severity [code]: message (...)]. *)

val to_json : t -> string
(** Self-contained JSON object (no external dependency); all fields
    present, strings escaped per RFC 8259. *)
