(** A compile artifact: the complete, serializable outcome of one
    [Flow.run] — every command's rendered output plus the summary
    metrics a result frame carries.

    This is the unit of persistence and of worker→acceptor transfer.  A
    fresh compile renders {e all} commands eagerly (rendering is string
    formatting, negligible next to scheduling), so an artifact can later
    answer any command byte-identically without the [Flow.t] it came
    from — which is what lets results cross process boundaries and
    daemon restarts while preserving the byte-identity guarantee. *)

type t = {
  a_ok : bool;
  a_renders : (Protocol.cmd * string) list;  (** all commands, when [a_ok] *)
  a_summary : string;
  a_tier : string;
  a_notes : string list;
  a_li : int;
  a_ii : int;
  a_delay_ps : float;
  a_area : float;
  a_power_mw : float;
  a_diag : string option;  (** human diagnostic, when not [a_ok] *)
  a_diag_json : string option;
  a_code : string option;
  a_wall_s : float;
  (* scheduler counters of the producing run (zero on failures) *)
  a_passes : int;
  a_warm : int;
  a_cold : int;
  a_queries : int;
  a_actions : int;
}

val of_flow : wall_s:float -> (Hls_flow.Flow.t, Hls_diag.Diag.t) result -> t

val render : t -> Protocol.cmd -> string
(** The rendered output for one command (empty string on error
    artifacts, mirroring the offline CLI which prints nothing on
    failure). *)

val to_json : t -> Protocol.json
val of_json : Protocol.json -> (t, string) result

val to_store : t -> string
(** Serialize for {!Hls_store.Store.put} (compact JSON text). *)

val of_store : string -> (t, string) result

(** {2 Job-spec derivations} — shared by acceptor and workers so both
    sides compute identical flow options and cache keys. *)

val options_of_spec : Protocol.job_spec -> Hls_flow.Flow.options

val point_of_spec : Protocol.job_spec -> Hls_dse.Dse.point

val key_of_spec : design:Hls_frontend.Ast.design -> Protocol.job_spec -> string
(** The two-level fingerprint collapsed to one store/cache key:
    [base_fingerprint(design, options) ^ "/" ^ digest(point)]. *)

val result_frame : job:int -> cmd:Protocol.cmd -> cached:bool -> t -> Protocol.json
(** The client-facing [result] frame for this artifact — the same field
    set the PR 5 daemon emitted, so clients decode it with
    {!Protocol.outcome_of_json} unchanged. *)
