(** The built-in design table plus request-side design loading — shared
    by the offline CLI and the compile-service daemon so both resolve
    exactly the same designs. *)

val builtins : (string * (unit -> Hls_frontend.Ast.design)) list
(** Name → constructor, in the order [hlsc designs] lists them. *)

val load : [ `Builtin of string | `Source of string ] -> (Hls_frontend.Ast.design, string) result
(** Resolve a job spec's design: a built-in by name, or inline [.bhv]
    source text parsed with the ordinary frontend.  Parse and lookup
    failures come back as one-line messages (never raises). *)

val local_spec : string -> ([ `Builtin of string | `Source of string ], string) result
(** CLI-side resolution of a DESIGN argument for [hlsc submit]: a
    built-in name passes through; a [.bhv] path is read so its {e
    contents} ship to the daemon (daemon and client share no cwd). *)
