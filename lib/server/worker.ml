(** Worker-process main loop.  See the interface for the wire contract
    and the crash-only discipline; the invariants that matter here:

    - Every write to the acceptor pipe goes through [send] (one writer
      mutex shared by the main loop, the heartbeat thread and the trace
      sink).  A failed write means the acceptor is gone, and the only
      sane response is [_exit 0] — there is nobody left to answer.
    - The heartbeat thread runs across compiles (the systhread tick
      keeps it scheduled under compute-bound OCaml code), so a stale
      heartbeat observed by the supervisor really means a wedged or
      chaos-stalled worker, not merely a long job.
    - Store reads/writes happen worker-side: the store's atomic puts
      make concurrent writers from sibling workers safe, and a decode
      or checksum failure on read is a miss (the store quarantines),
      never an error surfaced to the client. *)

module Flow = Hls_flow.Flow
module Diag = Hls_diag.Diag
module Store = Hls_store.Store
module P = Protocol

type chaos = { cz_seed : int; cz_kill : float; cz_stall : float; cz_corrupt : float }

type config = {
  w_slot : int;
  w_gen : int;
  w_hb_interval_s : float;
  w_store_dir : string option;
  w_chaos : chaos option;
}

let wresult ~job ~store_hit artifact =
  P.Obj
    [
      ("type", P.String "wresult");
      ("job", P.Int job);
      ("store_hit", P.Bool store_hit);
      ("artifact", Artifact.to_json artifact);
    ]

let run_job cfg ~send ~silence store rng ~job (spec : P.job_spec) =
  (match cfg.w_chaos with
  | None -> ()
  | Some cz ->
      if cz.cz_kill > 0.0 && Random.State.float rng 1.0 < cz.cz_kill then Unix._exit 70;
      if cz.cz_stall > 0.0 && Random.State.float rng 1.0 < cz.cz_stall then begin
        silence ();
        (* wedge silently: the supervisor's heartbeat timeout must find
           and SIGKILL us — that detection path is what this exercises *)
        while true do
          Unix.sleepf 3600.0
        done
      end);
  match Design_db.load spec.P.js_design with
  | Error m ->
      let d = Diag.make ~phase:Diag.Serve ~code:"bad_design" "%s" m in
      send (wresult ~job ~store_hit:false (Artifact.of_flow ~wall_s:0.0 (Error d)))
  | Ok design -> (
      let key = Artifact.key_of_spec ~design spec in
      let hit =
        match store with
        | None -> None
        | Some st -> (
            match Store.find st key with
            | None -> None
            | Some text -> (
                (* schema damage decodes as a miss — recompile, never serve *)
                match Artifact.of_store text with Ok a -> Some a | Error _ -> None))
      in
      match hit with
      | Some a -> send (wresult ~job ~store_hit:true a)
      | None ->
          let trace =
            if spec.P.js_trace then
              Some
                (Hls_core.Trace.create
                   ~sink:(fun level text ->
                     send
                       (P.Obj
                          [
                            ("type", P.String "event");
                            ("job", P.Int job);
                            ("level", P.String (Hls_core.Trace.level_to_string level));
                            ("text", P.String text);
                          ]))
                   ())
            else None
          in
          let options = Artifact.options_of_spec spec in
          let t0 = Unix.gettimeofday () in
          let flow = Flow.run ~options ?trace design in
          let a = Artifact.of_flow ~wall_s:(Unix.gettimeofday () -. t0) flow in
          (match store with
          | None -> ()
          | Some st -> (
              (match Store.put st key (Artifact.to_store a) with
              | Ok () -> ()
              | Error _ -> () (* a full/broken disk must not fail the job *));
              match cfg.w_chaos with
              | Some cz when cz.cz_corrupt > 0.0 && Random.State.float rng 1.0 < cz.cz_corrupt ->
                  ignore
                    (Store.corrupt st key (if Random.State.bool rng then `Truncate else `Flip))
              | _ -> ()));
          send (wresult ~job ~store_hit:false a))

let main cfg fd =
  (* we are a fresh fork: no parent signal handlers apply to our pipes *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  let wmutex = Mutex.create () in
  let send frame =
    Mutex.lock wmutex;
    (try P.write_frame fd frame
     with Unix.Unix_error _ | Sys_error _ ->
       (* acceptor is gone; nothing left to answer *)
       Unix._exit 0);
    Mutex.unlock wmutex
  in
  let silenced = Atomic.make false in
  let store =
    match cfg.w_store_dir with
    | None -> None
    | Some dir -> (
        (* the acceptor already ran the recovery scan; workers attach *)
        match Store.open_ ~scan:false dir with Ok st -> Some st | Error _ -> None)
  in
  let rng = Random.State.make
      (match cfg.w_chaos with
      | Some cz -> [| cz.cz_seed; cfg.w_slot; cfg.w_gen |]
      | None -> [| 0; cfg.w_slot; cfg.w_gen |])
  in
  send (P.Obj [ ("type", P.String "ready"); ("pid", P.Int (Unix.getpid ())) ]);
  let _hb =
    Thread.create
      (fun () ->
        while true do
          Unix.sleepf cfg.w_hb_interval_s;
          if not (Atomic.get silenced) then send (P.Obj [ ("type", P.String "heartbeat") ])
        done)
      ()
  in
  let rec loop () =
    (match P.read_frame fd with
    | Error P.F_eof -> Unix._exit 0 (* acceptor closed us out: clean death *)
    | Error (P.F_oversized _ | P.F_bad_json _) -> Unix._exit 1
    | Ok frame -> (
        match (P.member "type" frame, P.member "job" frame, P.member "spec" frame) with
        | Some (P.String "job"), Some (P.Int job), Some spec_json -> (
            match P.request_of_json spec_json with
            | Ok (P.Submit spec) ->
                run_job cfg ~send ~silence:(fun () -> Atomic.set silenced true) store rng ~job
                  spec
            | Ok _ | Error _ -> Unix._exit 1)
        | _ -> Unix._exit 1));
    loop ()
  in
  loop ()
