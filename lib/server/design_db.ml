open Hls_frontend

let builtins =
  [
    ("example1", fun () -> Hls_designs.Example1.design ());
    ("fir8", fun () -> Hls_designs.Fir.design ());
    ("fir16", fun () -> Hls_designs.Fir.design ~taps:16 ());
    ("fft", fun () -> Hls_designs.Fft.design ());
    ("idct", fun () -> Hls_designs.Idct.design ());
    ("sobel", fun () -> Hls_designs.Conv.design ());
    ("dotprod", fun () -> Hls_designs.Dotprod.design ());
    ("agc", fun () -> Hls_designs.Agc.design ());
    ("matvec4", fun () -> Hls_designs.Matmul.design ());
    ("matvec8", fun () -> Hls_designs.Matmul.design ~n:8 ());
    ("idct8x8", fun () -> Hls_designs.Idct2d.design ());
    ("gemm4", fun () -> Hls_designs.Gemm.design ());
  ]

let load = function
  | `Builtin name -> (
      match List.assoc_opt name builtins with
      | Some f -> Ok (f ())
      | None -> Error (Printf.sprintf "unknown design '%s' (try 'hlsc designs')" name))
  | `Source src -> (
      try Ok (Parser.parse_string src) with
      | Parser.Error { line; message } | Lexer.Error { line; message } ->
          Error (Printf.sprintf "line %d: %s" line message)
      | Desugar.Error f -> Error (Hls_frontend.Fault.message f)
      | Failure m -> Error m)

let local_spec name =
  if List.mem_assoc name builtins then Ok (`Builtin name)
  else if Filename.check_suffix name ".bhv" then
    if Sys.file_exists name then (
      try
        let ic = open_in_bin name in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        Ok (`Source src)
      with Sys_error m -> Error m)
    else Error (Printf.sprintf "no such file: %s" name)
  else
    Error (Printf.sprintf "unknown design '%s' (try 'hlsc designs' or pass a .bhv file)" name)
