(** The compile-service daemon behind [hlsc serve] — crash-only,
    supervised edition.

    The daemon is split across process boundaries so that no compile
    job, however pathological, can take the service down:

    - The {b acceptor} (this process) owns the listening sockets, a
      reader and a writer thread per client connection (outbound frames
      queue on a bounded per-connection outbox, so a client that stops
      reading is evicted rather than allowed to wedge the daemon),
      admission control, the bounded in-memory artifact cache, and the
      supervisor.  It never runs a compile.
    - [workers] forked {b worker processes} (see {!Worker}) each own one
      socketpair to the acceptor and run jobs one at a time.  Jobs are
      dispatched by design-fingerprint affinity (same key → same slot),
      so a hot design's warm scheduler state stays in one process.
    - A {b supervisor thread} watches every slot: a worker that misses
      heartbeats for [hb_timeout_s] (wedged) or blows its per-job wall
      deadline is SIGKILLed; the dead slot is respawned after an
      exponential backoff.  The victim's job is re-queued once (crash,
      hang) or failed with a typed [deadline_exceeded]/[worker_lost]
      result — clients always get an answer.
    - An optional {b on-disk artifact store} ({!Hls_store.Store}) keyed
      by the two-level design fingerprint makes results survive daemon
      restarts: workers consult it before compiling and publish after;
      the acceptor scans it for damage at startup and flushes its index
      on drain.

    Admission control is two-level: beyond [queue_capacity] queued jobs
    a submit is refused with [queue_full]; beyond the (lower)
    [shed_watermark] it is shed with a typed [overloaded] reject
    carrying [retry_after_ms] — except that in-memory cache hits are
    always served (they cost microseconds and relieve pressure).

    Drain (SIGTERM/SIGINT/shutdown verb): stop accepting, let the
    supervised fleet finish every queued and in-flight job (respawning
    crashed workers as needed), retire the workers, flush the store
    index, close connections, and report queued-vs-completed counts in
    the final stats line. *)

type config = {
  socket : string;  (** Unix-domain socket path (created; unlinked on drain) *)
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  workers : int;  (** worker-process count (≥ 1) *)
  queue_capacity : int;
      (** admission control: jobs queued-but-not-started beyond this are
          refused with a typed [queue_full] error *)
  shed_watermark : int option;
      (** shed load before the hard limit: queued jobs at or beyond this
          are refused with a typed [overloaded] error carrying a
          [retry_after_ms] hint; [None] disables shedding *)
  store_dir : string option;
      (** root of the persistent artifact store; [None] = memory only *)
  deadline_s : float;
      (** default hard per-job wall deadline (a submit's [deadline_s]
          overrides); the worker is killed and the job answered with
          [deadline_exceeded] when it trips *)
  hb_interval_s : float;  (** worker heartbeat period *)
  hb_timeout_s : float;
      (** heartbeats older than this mark the worker wedged: SIGKILL,
          re-queue the job, respawn the slot *)
  max_requeues : int;
      (** how many times one job may be re-dispatched after losing its
          worker before it is failed with [worker_lost] *)
  backoff_base_s : float;  (** first respawn delay after a crash *)
  backoff_cap_s : float;  (** respawn delay ceiling (doubles per crash) *)
  cache_cap : int;
      (** in-memory artifact-cache entry bound (≥ 1); the oldest entry
          is evicted first — with a store configured an evicted key is
          one store read away, so the daemon's memory stays bounded
          without losing durable warm state *)
  chaos : Worker.chaos option;  (** fault injection (tests only) *)
  verbose : bool;  (** log connection/job/supervision lifecycle to stderr *)
}

val default_config : config
(** [{socket = "hlsc.sock"; tcp_port = None; workers = 2;
     queue_capacity = 64; shed_watermark = Some 48; store_dir = None;
     deadline_s = 300.0; hb_interval_s = 0.05; hb_timeout_s = 2.0;
     max_requeues = 1; backoff_base_s = 0.05; backoff_cap_s = 2.0;
     cache_cap = 512; chaos = None; verbose = false}] *)

type t

val create : config -> (t, string) result
(** Bind the listening sockets, open (and recovery-scan) the artifact
    store, and fork the initial worker fleet — before any thread exists,
    so the first generation of workers is born from a single-threaded
    image.  Fails with a one-line message if a socket cannot be bound or
    the store is unusable. *)

val serve : t -> unit
(** Run the accept loop until {!stop} (or a handled signal) triggers the
    drain; returns only after the drain completes: all jobs answered,
    workers retired and reaped, store index flushed, sockets closed and
    unlinked. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe (a flag plus a self-pipe
    write), so it is also the SIGTERM/SIGINT handler body; callable from
    any thread.  Idempotent. *)

val run : config -> (unit, string) result
(** [create], install SIGTERM/SIGINT handlers (and ignore SIGPIPE), log
    the listening address, then {!serve}. *)
