(** The compile-service daemon behind [hlsc serve].

    A persistent process that accepts framed JSON requests (see
    {!Protocol}) over a Unix-domain socket (and optionally loopback TCP),
    schedules compile jobs onto a {!Hls_dse.Dse.Pool} of resident worker
    domains, shares one memo cache across every client for the process
    lifetime (the PR 4 two-level fingerprint key), streams scheduling
    events to the submitting client while a job runs, and drains
    gracefully on SIGTERM — stop admitting, finish in-flight and queued
    jobs, flush cache statistics, join every domain, unlink the socket.

    Concurrency model: one listener thread (the caller of {!serve}), one
    thread per client connection doing framed I/O, and [workers] domains
    executing jobs.  A per-connection writer mutex serializes frames, so
    events of concurrent jobs interleave only at frame granularity. *)

type config = {
  socket : string;  (** Unix-domain socket path (created; unlinked on drain) *)
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  workers : int;  (** worker-domain count (≥ 1) *)
  queue_capacity : int;
      (** admission control: jobs queued-but-not-started beyond this are
          refused with a typed [queue_full] error *)
  verbose : bool;  (** log connection/job lifecycle to stderr *)
}

val default_config : config
(** [{socket = "hlsc.sock"; tcp_port = None; workers = 2;
     queue_capacity = 64; verbose = false}] *)

type t

val create : config -> (t, string) result
(** Bind the listening sockets and spawn the worker pool.  Fails (with a
    one-line message) if a socket cannot be bound — e.g. the path is
    already in use by a live daemon. *)

val serve : t -> unit
(** Run the accept loop until {!stop} (or a handled signal) triggers the
    drain; returns only after the drain completes: all jobs finished,
    every domain joined, sockets closed and unlinked. *)

val stop : t -> unit
(** Request a graceful drain.  Async-signal-safe (a flag plus a self-pipe
    write), so it is also the SIGTERM/SIGINT handler body; callable from
    any thread.  Idempotent. *)

val run : config -> (unit, string) result
(** [create], install SIGTERM/SIGINT handlers (and ignore SIGPIPE), log
    the listening address, then {!serve}. *)
