(** Wire protocol of the compile-service daemon ([hlsc serve]).

    Transport: length-prefixed JSON frames — a 4-byte big-endian payload
    length followed by one JSON document (UTF-8).  Frames larger than
    {!max_frame} are refused with a typed protocol error; the oversized
    payload is consumed so the connection survives.

    Session: the client opens with [{"type":"hello","proto":V}]; the
    daemon answers with its own [hello] carrying {!version} and
    {!binary_version}.  A version mismatch is a typed error and the
    client must refuse the daemon.  After the handshake the connection is
    full-duplex: the client may pipeline [submit]/[cancel]/[stats]
    requests, and the daemon interleaves [event] frames (live
    scheduling-trace streaming) with [accepted]/[result]/[stats]/[error]
    frames.  Every daemon frame that answers a job carries the job id, so
    frames of concurrent jobs on one connection can be told apart. *)

(** {2 Versions} *)

val version : int
(** Wire-protocol version.  Bumped on any incompatible frame change;
    clients refuse daemons speaking a different version. *)

val binary_version : string
(** The hlsc binary version (also what [hlsc version] prints). *)

(** {2 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact one-line rendering, RFC 8259 escaping. *)

val of_string : string -> (json, string) result
(** Minimal recursive-descent parser (objects, arrays, strings with
    escapes, numbers, booleans, null).  No external dependency. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] otherwise. *)

val get_string : json -> string option
val get_int : json -> int option
val get_float : json -> float option
val get_bool : json -> bool option

(** {2 Frames} *)

val max_frame : int
(** Hard frame-size ceiling (payload bytes): 8 MiB. *)

type frame_error =
  | F_eof  (** peer closed the connection (clean only between frames) *)
  | F_oversized of int  (** declared length beyond {!max_frame}; payload skipped *)
  | F_bad_json of string  (** payload was not a JSON document *)

val frame_error_to_string : frame_error -> string

val read_frame : Unix.file_descr -> (json, frame_error) result
(** Blocking read of one frame.  On [F_oversized] the payload has been
    consumed and discarded, so the stream stays framed. *)

val write_frame : Unix.file_descr -> json -> unit
(** Blocking write of one frame.  Raises [Unix.Unix_error] (e.g. [EPIPE])
    if the peer is gone — callers own serialization (one writer mutex per
    connection) and disconnect handling. *)

(** {2 Requests} *)

type cmd = C_schedule | C_pipeline | C_flow

val cmd_to_string : cmd -> string
val cmd_of_string : string -> cmd option

(** What to compile and under which configuration — the server-side
    mirror of the CLI's design/flags arguments. *)
type job_spec = {
  js_design : [ `Builtin of string | `Source of string ];
      (** a built-in design name, or inline [.bhv] source text (the client
          ships file contents, so daemon and client need no shared cwd) *)
  js_cmd : cmd;
  js_ii : int option;
  js_clock_ps : float;
  js_min_latency : int option;
  js_max_latency : int option;
  js_max_passes : int option;
  js_timeout_s : float option;  (** scheduler wall-clock budget (soft: typed failure) *)
  js_deadline_s : float option;
      (** hard per-job wall deadline: the supervisor kills the worker at
          this age and answers with a typed [deadline_exceeded] error;
          [None] falls back to the daemon's configured default *)
  js_verify : bool;
  js_trace : bool;  (** stream scheduling events while the job runs *)
}

val job_spec : ?ii:int -> ?min_latency:int -> ?max_latency:int -> ?max_passes:int ->
  ?timeout_s:float -> ?deadline_s:float -> ?verify:bool -> ?trace:bool -> ?clock_ps:float ->
  cmd -> [ `Builtin of string | `Source of string ] -> job_spec
(** [clock_ps] defaults to 1600; [verify] to [true] (the CLI default);
    [trace] to [false]. *)

type request =
  | Hello of int  (** client protocol version *)
  | Submit of job_spec
  | Cancel of int  (** job id *)
  | Stats
  | Health  (** liveness + supervision snapshot (workers, queue, store) *)
  | Shutdown  (** ask the daemon to drain (same path as SIGTERM) *)

val request_to_json : request -> json
val request_of_json : json -> (request, string) result

val error_frame : ?job:int -> ?extra:(string * json) list -> code:string -> string -> json
(** The daemon's typed error frame:
    [{"type":"error","code":C,"message":M}] plus the job id and any
    [extra] fields (e.g. [retry_after_ms] on [overloaded] rejects).
    Stable codes include [bad_json], [frame_too_large], [proto_mismatch],
    [hello_required], [bad_request], [bad_design], [queue_full],
    [overloaded], [draining]; job results that failed inside the service
    tier come back as [result] frames with [code] [worker_lost] or
    [deadline_exceeded]. *)

(** {2 Job outcome (client-side decoded result frame)} *)

type status = S_ok | S_error | S_cancelled

val status_to_string : status -> string

type outcome = {
  o_job : int;
  o_status : status;
  o_output : string;  (** rendered tables — byte-identical to the offline CLI *)
  o_summary : string;
  o_tier : string;
  o_notes : string list;  (** degradation warnings, as the CLI prints them *)
  o_diag : string option;  (** human diagnostic when [o_status = S_error] *)
  o_diag_json : string option;
  o_code : string option;  (** machine code of the diagnostic *)
  o_cached : bool;  (** served from the daemon's memo cache *)
  o_wall_s : float;  (** server-side wall clock of the job *)
}

val outcome_of_json : json -> (outcome, string) result
