(** Wire protocol: length-prefixed JSON frames.  See the interface for
    the frame and session contract; this file is the JSON codec (both
    directions, no external dependency) plus the blocking frame I/O. *)

let version = 2
let binary_version = "1.2.0"

(* ------------------------------------------------------------------ *)
(* JSON values *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f
  | String s -> "\"" ^ escape s ^ "\""
  | List l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"

(* recursive-descent parser over a string with one index cell *)
exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal (expected " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let cp =
                match int_of_string_opt ("0x" ^ hex) with
                | Some v -> v
                | None -> fail "bad \\u escape"
              in
              (* encode the code point as UTF-8 (surrogate pairs not
                 recombined — the daemon never emits them) *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("bad number '" ^ lit ^ "'"))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  with Parse m -> Error m

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* Frames *)

let max_frame = 8 * 1024 * 1024

type frame_error = F_eof | F_oversized of int | F_bad_json of string

let frame_error_to_string = function
  | F_eof -> "connection closed"
  | F_oversized n -> Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n max_frame
  | F_bad_json m -> "bad JSON payload: " ^ m

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let k = Unix.read fd buf off len in
      if k = 0 then raise End_of_file;
      go (off + k) (len - k)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let k = Unix.write fd buf off len in
      go (off + k) (len - k)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | exception End_of_file -> Error F_eof
  | () -> (
      let len =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if len > max_frame then begin
        (* consume and discard the declared payload in bounded chunks so
           the stream stays framed and the connection survives *)
        let chunk = Bytes.create 65536 in
        let rec discard remaining =
          if remaining > 0 then begin
            let k = Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) in
            if k = 0 then raise End_of_file;
            discard (remaining - k)
          end
        in
        match discard len with
        | exception End_of_file -> Error F_eof
        | () -> Error (F_oversized len)
      end
      else
        let payload = Bytes.create len in
        match really_read fd payload 0 len with
        | exception End_of_file -> Error F_eof
        | () -> (
            match of_string (Bytes.unsafe_to_string payload) with
            | Ok v -> Ok v
            | Error m -> Error (F_bad_json m)))

let write_frame fd v =
  let payload = to_string v in
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_uint8 buf 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 buf 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 buf 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 buf 3 (len land 0xff);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

(* ------------------------------------------------------------------ *)
(* Requests *)

type cmd = C_schedule | C_pipeline | C_flow

let cmd_to_string = function C_schedule -> "schedule" | C_pipeline -> "pipeline" | C_flow -> "flow"

let cmd_of_string = function
  | "schedule" -> Some C_schedule
  | "pipeline" -> Some C_pipeline
  | "flow" -> Some C_flow
  | _ -> None

type job_spec = {
  js_design : [ `Builtin of string | `Source of string ];
  js_cmd : cmd;
  js_ii : int option;
  js_clock_ps : float;
  js_min_latency : int option;
  js_max_latency : int option;
  js_max_passes : int option;
  js_timeout_s : float option;
  js_deadline_s : float option;
  js_verify : bool;
  js_trace : bool;
}

let job_spec ?ii ?min_latency ?max_latency ?max_passes ?timeout_s ?deadline_s ?(verify = true)
    ?(trace = false) ?(clock_ps = 1600.0) cmd design =
  {
    js_design = design;
    js_cmd = cmd;
    js_ii = ii;
    js_clock_ps = clock_ps;
    js_min_latency = min_latency;
    js_max_latency = max_latency;
    js_max_passes = max_passes;
    js_timeout_s = timeout_s;
    js_deadline_s = deadline_s;
    js_verify = verify;
    js_trace = trace;
  }

type request = Hello of int | Submit of job_spec | Cancel of int | Stats | Health | Shutdown

let opt_int = function None -> Null | Some i -> Int i
let opt_float = function None -> Null | Some f -> Float f

let job_spec_to_json js =
  Obj
    [
      (match js.js_design with
      | `Builtin name -> ("design", String name)
      | `Source src -> ("source", String src));
      ("cmd", String (cmd_to_string js.js_cmd));
      ("ii", opt_int js.js_ii);
      ("clock_ps", Float js.js_clock_ps);
      ("min_latency", opt_int js.js_min_latency);
      ("max_latency", opt_int js.js_max_latency);
      ("max_passes", opt_int js.js_max_passes);
      ("timeout_s", opt_float js.js_timeout_s);
      ("deadline_s", opt_float js.js_deadline_s);
      ("verify", Bool js.js_verify);
      ("trace", Bool js.js_trace);
    ]

let request_to_json = function
  | Hello v -> Obj [ ("type", String "hello"); ("proto", Int v) ]
  | Submit js -> (
      match job_spec_to_json js with
      | Obj kvs -> Obj (("type", String "submit") :: kvs)
      | _ -> assert false)
  | Cancel id -> Obj [ ("type", String "cancel"); ("job", Int id) ]
  | Stats -> Obj [ ("type", String "stats") ]
  | Health -> Obj [ ("type", String "health") ]
  | Shutdown -> Obj [ ("type", String "shutdown") ]

let field_int j k = Option.bind (member k j) get_int
let field_float j k = Option.bind (member k j) get_float
let field_string j k = Option.bind (member k j) get_string
let field_bool j k = Option.bind (member k j) get_bool

let job_spec_of_json j =
  let design =
    match (field_string j "design", field_string j "source") with
    | Some name, _ -> Ok (`Builtin name)
    | None, Some src -> Ok (`Source src)
    | None, None -> Error "submit needs a 'design' name or inline 'source'"
  in
  match design with
  | Error m -> Error m
  | Ok design -> (
      match Option.bind (field_string j "cmd") cmd_of_string with
      | None -> Error "submit needs a 'cmd' of schedule|pipeline|flow"
      | Some cmd ->
          Ok
            {
              js_design = design;
              js_cmd = cmd;
              js_ii = field_int j "ii";
              js_clock_ps = Option.value (field_float j "clock_ps") ~default:1600.0;
              js_min_latency = field_int j "min_latency";
              js_max_latency = field_int j "max_latency";
              js_max_passes = field_int j "max_passes";
              js_timeout_s = field_float j "timeout_s";
              js_deadline_s = field_float j "deadline_s";
              js_verify = Option.value (field_bool j "verify") ~default:true;
              js_trace = Option.value (field_bool j "trace") ~default:false;
            })

let request_of_json j =
  match field_string j "type" with
  | Some "hello" -> (
      match field_int j "proto" with
      | Some v -> Ok (Hello v)
      | None -> Error "hello needs an integer 'proto'")
  | Some "submit" -> Result.map (fun js -> Submit js) (job_spec_of_json j)
  | Some "cancel" -> (
      match field_int j "job" with
      | Some id -> Ok (Cancel id)
      | None -> Error "cancel needs an integer 'job'")
  | Some "stats" -> Ok Stats
  | Some "health" -> Ok Health
  | Some "shutdown" -> Ok Shutdown
  | Some t -> Error (Printf.sprintf "unknown request type '%s'" t)
  | None -> Error "request needs a 'type'"

(* ------------------------------------------------------------------ *)
(* Typed error frames *)

let error_frame ?job ?(extra = []) ~code msg =
  Obj
    ((match job with Some id -> [ ("job", Int id) ] | None -> [])
    @ [ ("type", String "error"); ("code", String code); ("message", String msg) ]
    @ extra)

(* ------------------------------------------------------------------ *)
(* Outcomes *)

type status = S_ok | S_error | S_cancelled

let status_to_string = function S_ok -> "ok" | S_error -> "error" | S_cancelled -> "cancelled"

let status_of_string = function
  | "ok" -> Some S_ok
  | "error" -> Some S_error
  | "cancelled" -> Some S_cancelled
  | _ -> None

type outcome = {
  o_job : int;
  o_status : status;
  o_output : string;
  o_summary : string;
  o_tier : string;
  o_notes : string list;
  o_diag : string option;
  o_diag_json : string option;
  o_code : string option;
  o_cached : bool;
  o_wall_s : float;
}

let outcome_of_json j =
  match Option.bind (field_string j "status") status_of_string with
  | None -> Error "result frame without a valid 'status'"
  | Some status ->
      let notes =
        match member "notes" j with
        | Some (List l) -> List.filter_map get_string l
        | _ -> []
      in
      Ok
        {
          o_job = Option.value (field_int j "job") ~default:(-1);
          o_status = status;
          o_output = Option.value (field_string j "output") ~default:"";
          o_summary = Option.value (field_string j "summary") ~default:"";
          o_tier = Option.value (field_string j "tier") ~default:"";
          o_notes = notes;
          o_diag = field_string j "diag";
          o_diag_json = field_string j "diag_json";
          o_code = field_string j "code";
          o_cached = Option.value (field_bool j "cached") ~default:false;
          o_wall_s = Option.value (field_float j "wall_s") ~default:0.0;
        }
