(** Canonical stdout rendering of the CLI's result-bearing commands.

    [hlsc schedule]/[pipeline]/[flow] and the daemon's [submit] path both
    print through these functions, so the served output is byte-identical
    to the offline CLI by construction (the CI [serve-smoke] job and
    [test_server] both enforce it). *)

val schedule : Hls_flow.Flow.t -> string
(** Binding table, flow summary line, then one ["  relaxation: ..."] line
    per relaxation action. *)

val pipeline : Hls_flow.Flow.t -> string
(** Folded-kernel table (the Fig. 5 view) then the flow summary line. *)

val flow : Hls_flow.Flow.t -> string
(** Summary line, area/power breakdown, and the verification verdict when
    the run verified. *)

val output : Protocol.cmd -> Hls_flow.Flow.t -> string
