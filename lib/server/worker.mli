(** The compile-worker process: the code that runs in each forked child
    of the serve daemon's acceptor.

    A worker owns one end of a socketpair to the acceptor and speaks
    {!Protocol} frames over it:

    - acceptor → worker: [{"type":"job","job":I,"spec":{...submit...}}]
    - worker → acceptor: [ready] (once, with its pid), [heartbeat]
      (periodic liveness), [event] (relayed scheduling trace),
      [wresult] [{"job":I,"store_hit":B,"artifact":{...}}]

    Crash-only discipline: the worker {e never} returns to the forked
    copy of the acceptor — every exit path is [Unix._exit], so inherited
    stdio buffers are never flushed twice and [at_exit] hooks of the
    parent image never run in the child.  EOF from the acceptor means
    "drain finished, die": the worker exits 0.  Any job may legitimately
    die mid-run (chaos injection, OOM, a scheduler bug): the acceptor
    detects it via EOF/waitpid and re-queues or fails the job — workers
    hold no state a crash can lose beyond the job in hand, and artifact
    store writes are atomic. *)

(** Fault injection, seeded and per-worker deterministic: each job first
    draws kill (immediate [_exit 70]), then stall (silence heartbeats
    and sleep forever — exercises hang detection), and after a fresh
    compile draws corrupt (damage the just-written store entry — the
    in-hand result is unaffected, so clients still get correct bytes and
    the damage must be caught by quarantine on the next read). *)
type chaos = {
  cz_seed : int;
  cz_kill : float;  (** probability per job of dying before work *)
  cz_stall : float;  (** probability per job of hanging silently *)
  cz_corrupt : float;  (** probability per fresh compile of store damage *)
}

type config = {
  w_slot : int;  (** worker slot index (dispatch affinity) *)
  w_gen : int;  (** respawn generation of this slot *)
  w_hb_interval_s : float;  (** heartbeat period *)
  w_store_dir : string option;  (** artifact store root; [None] = no store *)
  w_chaos : chaos option;
}

val main : config -> Unix.file_descr -> 'a
(** Run the worker loop on this acceptor pipe.  Never returns (every
    path ends in [Unix._exit]).  Call only in a freshly forked child. *)
