module Flow = Hls_flow.Flow

let schedule (r : Flow.t) =
  Hls_report.Table.render (Hls_core.Scheduler.to_table r.Flow.f_sched)
  ^ Flow.summary r ^ "\n"
  ^ String.concat ""
      (List.map
         (fun a -> "  relaxation: " ^ a ^ "\n")
         r.Flow.f_sched.Hls_core.Scheduler.s_actions)

let pipeline (r : Flow.t) =
  Hls_report.Table.render (Hls_core.Pipeline.to_table r.Flow.f_sched r.Flow.f_fold)
  ^ Flow.summary r ^ "\n"

let flow (r : Flow.t) =
  Flow.summary r ^ "\n"
  ^ Format.asprintf "%a@." Hls_rtl.Stats.pp_breakdown r.Flow.f_area
  ^ (match r.Flow.f_equiv with
    | Some v -> Hls_sim.Equiv.verdict_to_string v ^ "\n"
    | None -> "")

let output cmd r =
  match cmd with
  | Protocol.C_schedule -> schedule r
  | Protocol.C_pipeline -> pipeline r
  | Protocol.C_flow -> flow r
