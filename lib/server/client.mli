(** Client half of the compile-service protocol: connection + handshake,
    blocking submit with live event streaming, job cancellation, stats,
    and the [bench-serve] load generator. *)

type t
(** One connection to a daemon (handshake already verified). *)

val connect : ?tcp:string * int -> socket:string -> unit -> (t, string) result
(** Connect over the Unix-domain [socket] (or [tcp] when given), perform
    the hello handshake and verify the daemon speaks {!Protocol.version};
    a mismatched daemon is refused with a one-line error. *)

val close : t -> unit

val submit_nowait : t -> Protocol.job_spec -> (int, string) result
(** Send a submit request and return the daemon-assigned job id as soon
    as the [accepted] frame arrives (admission errors come back as
    [Error]).  Follow with {!await}. *)

val await :
  ?on_event:(level:string -> string -> unit) -> t -> (Protocol.outcome, string) result
(** Read frames until this connection's next [result] frame; [on_event]
    fires for each streamed scheduling event in arrival order. *)

val submit :
  ?on_event:(level:string -> string -> unit) ->
  t ->
  Protocol.job_spec ->
  (Protocol.outcome, string) result
(** {!submit_nowait} then {!await}. *)

val cancel : t -> int -> (bool, string) result
(** Ask the daemon to cancel a job; [Ok found] reflects whether the job
    was still known (queued or running). *)

val stats : t -> (Protocol.json, string) result
(** Fetch the daemon's metrics snapshot (the raw [stats] frame). *)

val shutdown_server : t -> (unit, string) result
(** Ask the daemon to drain (the SIGTERM path, but over the wire). *)

val health : t -> (Protocol.json, string) result
(** Fetch the daemon's supervision snapshot (the raw [health] frame):
    overall [status] ("ok"/"degraded"), per-worker liveness, queue
    depths and store health. *)

val submit_retrying :
  ?on_event:(level:string -> string -> unit) ->
  ?retries:int ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  ?seed:int ->
  connect:(unit -> (t, string) result) ->
  Protocol.job_spec ->
  (Protocol.outcome * int, string) result
(** Submit with automatic retries over a fresh connection per attempt
    (the daemon, or the worker under it, may have died mid-flight).
    Retries — up to [retries] (default 3) extra attempts with jittered
    exponential backoff (start [backoff_s], cap [max_backoff_s]) — fire
    on transport faults and on the transient typed answers
    [overloaded], [queue_full] and [worker_lost].  Jobs are idempotent
    by design fingerprint, so re-submitting is always safe.  Typed
    answers retrying cannot change — [bad_design], [draining],
    [deadline_exceeded], a compile failure — are returned as-is.
    [Ok (outcome, attempts)] reports how many attempts were spent. *)

(** {2 Load generator ([hlsc bench-serve])} *)

type bench_result = {
  b_clients : int;
  b_requests : int;  (** per client, per phase *)
  b_cold_wall_s : float;  (** wall clock of the cold phase (distinct points) *)
  b_warm_wall_s : float;  (** wall clock of the warm phase (repeat requests) *)
  b_cold_p50_ms : float;
  b_cold_p95_ms : float;
  b_warm_p50_ms : float;
  b_warm_p95_ms : float;
  b_cold_throughput : float;  (** requests per second, cold phase *)
  b_warm_throughput : float;
  b_cache_hit_rate : float;  (** cache-served fraction over both phases *)
  b_speedup : float;  (** cold p50 / warm p50 *)
  b_errors : int;
}

val bench :
  socket:string ->
  clients:int ->
  requests:int ->
  design:string ->
  cmd:Protocol.cmd ->
  unit ->
  (bench_result, string) result
(** Run [clients] concurrent client threads, each with its own
    connection, through two phases: a {e cold} phase of [requests]
    distinct configurations per client (every request a fresh compile)
    and a {e warm} phase repeating exactly the same configurations
    (every request a cache hit).  Latencies are per-request round trips. *)

val bench_to_json : bench_result -> string
