(** Daemon implementation.  See the interface for the process model;
    the invariants that matter here:

    - [t.mutex] guards the job table, the slot array, admission counters,
      statistics and the in-memory artifact cache.  Lock order is
      [t.mutex] → [conn.c_wmutex]; nothing takes them the other way.
    - No thread ever performs socket I/O to a client while holding
      [t.mutex].  [send] only enqueues the frame on the connection's
      bounded outbox (an O(1) step under [c_wmutex]); a per-connection
      writer thread drains the outbox and does the actual (possibly
      blocking, multi-MB) [write_frame].  A client that disconnects
      mid-stream turns into silently dropped frames, never an unhandled
      [EPIPE]; a client that stops *reading* fills its outbox and is
      evicted (socket shut down, frames dropped) instead of wedging the
      daemon.  Writes to a worker pipe may fail when the worker just
      died; they are deliberately ignored — the slot's reader thread
      owns the death and will re-queue the job.
    - Exactly one thread retires a worker: its reader.  The supervisor
      only ever SIGKILLs (recording why in [s_kill_reason]); the kill
      surfaces to the reader as EOF, which closes the fd, reaps the pid,
      re-queues or fails the in-hand job, and schedules the respawn.
    - [stop] is just an atomic flag plus one self-pipe byte: safe from a
      signal handler.  The listener thread notices and runs the drain. *)

module Diag = Hls_diag.Diag
module Store = Hls_store.Store
module P = Protocol

type config = {
  socket : string;
  tcp_port : int option;
  workers : int;
  queue_capacity : int;
  shed_watermark : int option;
  store_dir : string option;
  deadline_s : float;
  hb_interval_s : float;
  hb_timeout_s : float;
  max_requeues : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  cache_cap : int;
  chaos : Worker.chaos option;
  verbose : bool;
}

let default_config =
  {
    socket = "hlsc.sock";
    tcp_port = None;
    workers = 2;
    queue_capacity = 64;
    shed_watermark = Some 48;
    store_dir = None;
    deadline_s = 300.0;
    hb_interval_s = 0.05;
    hb_timeout_s = 2.0;
    max_requeues = 1;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.0;
    cache_cap = 512;
    chaos = None;
    verbose = false;
  }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;  (** guards [c_outq], [c_alive], [c_closing] *)
  c_wcv : Condition.t;  (** outbox activity (frame queued, state change) *)
  c_outq : P.json Queue.t;  (** bounded outbox, drained by [c_writer] *)
  mutable c_alive : bool;  (** cleared on write failure or outbox overflow *)
  mutable c_closing : bool;  (** read side done; writer exits once drained *)
  mutable c_writer : Thread.t option;
}

type job = {
  j_id : int;
  j_spec : P.job_spec;
  j_conn : conn;
  j_key : string;  (** two-level fingerprint: cache and store key *)
  mutable j_cancelled : bool;  (** guarded by [t.mutex] *)
  mutable j_waiters : (int * conn) list;
      (** coalesced submits of the same fingerprint, newest first: each
          gets its own job id and a copy of this job's answer (guarded by
          [t.mutex]).  A job with waiters ignores cancellation — the
          compile is shared. *)
  mutable j_requeues : int;  (** re-dispatches after a lost worker *)
  mutable j_started : float;  (** when last dispatched *)
  mutable j_deadline : float;  (** absolute kill deadline once dispatched *)
}

type slot_state = W_idle | W_busy of job | W_dead
type kill_reason = K_none | K_deadline | K_hang

(* one supervised worker process; all fields guarded by [t.mutex] *)
type slot = {
  s_idx : int;
  s_queue : job Queue.t;  (** jobs with affinity to this slot *)
  mutable s_state : slot_state;
  mutable s_pid : int;  (** 0 when no process *)
  mutable s_fd : Unix.file_descr;  (** meaningful only when [s_pid <> 0] *)
  mutable s_gen : int;  (** respawn generation *)
  mutable s_last_beat : float;
  mutable s_crashes : int;  (** consecutive losses; reset on a completion *)
  mutable s_respawn_at : float;  (** earliest respawn when [W_dead] *)
  mutable s_kill_reason : kill_reason;  (** why the supervisor shot it *)
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  store : Store.t option;
  mutex : Mutex.t;
  drain_cv : Condition.t;  (** signalled whenever a job leaves the system *)
  cache : (string, Artifact.t) Hashtbl.t;
  cache_order : string Queue.t;  (** insertion order, for FIFO eviction *)
  jobs : (int, job) Hashtbl.t;  (** queued or in flight *)
  inflight_keys : (string, job) Hashtbl.t;
      (** fingerprint → the queued/in-flight job computing it; a second
          submit of the same key rides this one instead of compiling *)
  slots : slot array;
  mutable next_job : int;
  mutable next_conn : int;
  mutable queued : int;
  mutable in_flight : int;
  mutable conns : (Thread.t * conn) list;
  mutable readers : Thread.t list;
  mutable supervisor : Thread.t option;
  mutable stopping_workers : bool;  (** drain: readers stop respawn bookkeeping *)
  sup_stop : bool Atomic.t;
  (* statistics *)
  mutable n_submitted : int;
  mutable n_ok : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable n_rejected : int;
  mutable n_shed : int;
  mutable n_cache_hits : int;
  mutable n_coalesced : int;
  mutable n_store_hits : int;
  mutable n_conns_total : int;
  mutable n_crashes : int;
  mutable n_respawns : int;
  mutable n_requeued : int;
  mutable n_deadline_kills : int;
  mutable n_hang_kills : int;
  mutable st_passes : int;
  mutable st_warm : int;
  mutable st_cold : int;
  mutable st_queries : int;
  mutable st_actions : int;
  started : float;
  stop_flag : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let logv t fmt =
  Printf.ksprintf (fun s -> if t.cfg.verbose then Printf.eprintf "hlsc serve: %s\n%!" s) fmt

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Frame output.

   Result frames can carry multi-MB renders, and a client is free to
   stop reading; if the daemon wrote frames synchronously from whatever
   thread produced them (often while holding [t.mutex]), one such client
   would wedge dispatch, supervision and every other connection.  So
   [send] never touches the socket: it enqueues on a bounded outbox and
   the connection's writer thread performs the blocking writes.  A peer
   whose outbox overflows [outbox_cap] is declared dead and its socket
   shut down — eviction, not backpressure, because nothing upstream of a
   result frame can usefully wait. *)

let outbox_cap = 256

let mark_dead_locked conn =
  conn.c_alive <- false;
  Queue.clear conn.c_outq;
  Condition.broadcast conn.c_wcv

let send conn frame =
  Mutex.lock conn.c_wmutex;
  (if conn.c_alive && not conn.c_closing then
     if Queue.length conn.c_outq >= outbox_cap then begin
       mark_dead_locked conn;
       (* unwedge the writer (blocked on a full socket buffer) and the
          reader (blocked on a peer that sends nothing either) *)
       try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
     end
     else begin
       Queue.push frame conn.c_outq;
       Condition.broadcast conn.c_wcv
     end);
  Mutex.unlock conn.c_wmutex

(* the writer thread: drains the outbox in order; exits when the peer is
   dead or the connection is closing with nothing left to flush *)
let conn_writer conn =
  let rec loop () =
    Mutex.lock conn.c_wmutex;
    while Queue.is_empty conn.c_outq && conn.c_alive && not conn.c_closing do
      Condition.wait conn.c_wcv conn.c_wmutex
    done;
    match Queue.take_opt conn.c_outq with
    | None -> Mutex.unlock conn.c_wmutex
    | Some frame ->
        Mutex.unlock conn.c_wmutex;
        (try P.write_frame conn.c_fd frame
         with
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) | Sys_error _ ->
          Mutex.lock conn.c_wmutex;
          mark_dead_locked conn;
          Mutex.unlock conn.c_wmutex);
        loop ()
  in
  loop ()

(* retire a connection: give the writer a bounded grace to flush what a
   live peer is still owed, then shut the socket (unwedging a writer
   blocked on a peer that stopped reading), join the writer, close *)
let close_conn conn =
  let deadline = Unix.gettimeofday () +. 5.0 in
  Mutex.lock conn.c_wmutex;
  conn.c_closing <- true;
  Condition.broadcast conn.c_wcv;
  (* poll, not [Condition.wait]: there is no timed wait, and a writer
     wedged inside [write_frame] would never signal *)
  while conn.c_alive && (not (Queue.is_empty conn.c_outq)) && Unix.gettimeofday () < deadline do
    Mutex.unlock conn.c_wmutex;
    Thread.delay 0.005;
    Mutex.lock conn.c_wmutex
  done;
  mark_dead_locked conn;
  Mutex.unlock conn.c_wmutex;
  (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (match conn.c_writer with Some th -> Thread.join th | None -> ());
  quiet_close conn.c_fd

let cancelled_frame job_id =
  P.Obj
    [
      ("type", P.String "result");
      ("job", P.Int job_id);
      ("status", P.String "cancelled");
      ("cached", P.Bool false);
      ("wall_s", P.Float 0.0);
    ]

(* a service-tier failure is still a [result] frame (the job was accepted
   and has an answer) — just one whose diagnostic the daemon authored *)
let failed_result_frame ~job_id ~wall ~code msg =
  let d = Diag.make ~phase:Diag.Serve ~code "%s" msg in
  P.Obj
    [
      ("type", P.String "result");
      ("job", P.Int job_id);
      ("status", P.String "error");
      ("diag", P.String (Diag.to_string d));
      ("diag_json", P.String (Diag.to_json d));
      ("code", P.String code);
      ("cached", P.Bool false);
      ("wall_s", P.Float wall);
    ]

(* ------------------------------------------------------------------ *)
(* In-memory cache (guarded by [t.mutex]).

   Bounded at [cache_cap] entries with FIFO eviction — artifacts carry
   every rendered output and can run to megabytes, so an unbounded table
   is a slow leak on any long-lived daemon.  FIFO (not LRU) is enough:
   the persistent store keeps durable copies, so evicting a hot key only
   costs a store read on its next submit. *)

let cache_put_locked t key a =
  if not (Hashtbl.mem t.cache key) then begin
    while Hashtbl.length t.cache >= t.cfg.cache_cap do
      match Queue.take_opt t.cache_order with
      | Some victim -> Hashtbl.remove t.cache victim
      | None -> Hashtbl.reset t.cache (* unreachable: order mirrors the table *)
    done;
    Queue.push key t.cache_order
  end;
  Hashtbl.replace t.cache key a

(* ------------------------------------------------------------------ *)
(* Accounting *)

let account t (a : Artifact.t) ~store_hit =
  if a.Artifact.a_ok then begin
    t.n_ok <- t.n_ok + 1;
    if not store_hit then begin
      (* the st_* pass counters track scheduling actually performed *)
      t.st_passes <- t.st_passes + a.Artifact.a_passes;
      t.st_warm <- t.st_warm + a.Artifact.a_warm;
      t.st_cold <- t.st_cold + a.Artifact.a_cold;
      t.st_queries <- t.st_queries + a.Artifact.a_queries;
      t.st_actions <- t.st_actions + a.Artifact.a_actions
    end
  end
  else t.n_failed <- t.n_failed + 1

(* ------------------------------------------------------------------ *)
(* Dispatch (all _locked functions require [t.mutex] held) *)

let job_frame job =
  P.Obj
    [
      ("type", P.String "job");
      ("job", P.Int job.j_id);
      ("spec", P.request_to_json (P.Submit job.j_spec));
    ]

let dispatch_locked t slot job =
  let now = Unix.gettimeofday () in
  slot.s_state <- W_busy job;
  t.queued <- t.queued - 1;
  t.in_flight <- t.in_flight + 1;
  job.j_started <- now;
  job.j_deadline <-
    now +. Option.value job.j_spec.P.js_deadline_s ~default:t.cfg.deadline_s;
  (* a failed write means the worker just died: leave the job in
     [W_busy] — the slot's reader owns the death and will re-queue it *)
  try P.write_frame slot.s_fd (job_frame job)
  with Unix.Unix_error _ | Sys_error _ -> ()

let rec pump_locked t slot =
  match slot.s_state with
  | W_busy _ | W_dead -> ()
  (* the supervisor already SIGKILLed this worker (its wresult may still
     have raced in and idled the slot): dispatching now would hand a job
     to a corpse and get it mis-billed for the *previous* job's kill
     reason when the death is processed.  Hold the queue until the
     respawn, which resets [s_kill_reason]. *)
  | W_idle when slot.s_kill_reason <> K_none -> ()
  | W_idle -> (
      match Queue.take_opt slot.s_queue with
      | None -> ()
      | Some job ->
          (* cancellation is honoured only when nobody else rides the
             job: coalesced waiters keep the compile alive *)
          if job.j_cancelled && job.j_waiters = [] then begin
            t.queued <- t.queued - 1;
            t.n_cancelled <- t.n_cancelled + 1;
            Hashtbl.remove t.jobs job.j_id;
            Hashtbl.remove t.inflight_keys job.j_key;
            send job.j_conn (cancelled_frame job.j_id);
            Condition.broadcast t.drain_cv;
            pump_locked t slot
          end
          else dispatch_locked t slot job)

let requeue_locked t slot job =
  job.j_requeues <- job.j_requeues + 1;
  t.n_requeued <- t.n_requeued + 1;
  t.in_flight <- t.in_flight - 1;
  t.queued <- t.queued + 1;
  (* move off the crashed slot: the design may be what killed it *)
  let target = t.slots.((slot.s_idx + 1) mod Array.length t.slots) in
  Queue.push job target.s_queue;
  pump_locked t target

let fail_inflight_locked t job ~code msg =
  t.in_flight <- t.in_flight - 1;
  t.n_failed <- t.n_failed + 1;
  Hashtbl.remove t.jobs job.j_id;
  Hashtbl.remove t.inflight_keys job.j_key;
  let wall = Unix.gettimeofday () -. job.j_started in
  send job.j_conn (failed_result_frame ~job_id:job.j_id ~wall ~code msg);
  (* coalesced waiters share the owner's fate *)
  List.iter
    (fun (wid, wconn) ->
      t.n_failed <- t.n_failed + 1;
      send wconn (failed_result_frame ~job_id:wid ~wall ~code msg))
    (List.rev job.j_waiters);
  job.j_waiters <- []

(* ------------------------------------------------------------------ *)
(* Worker frames (reader threads, one per live worker generation) *)

let handle_wresult t slot frame =
  let job_id = Option.value (Option.bind (P.member "job" frame) P.get_int) ~default:(-1) in
  let store_hit =
    Option.value (Option.bind (P.member "store_hit" frame) P.get_bool) ~default:false
  in
  let artifact =
    match P.member "artifact" frame with
    | Some j -> Artifact.of_json j
    | None -> Error "wresult frame without artifact"
  in
  locked t (fun () ->
      slot.s_crashes <- 0;
      (match slot.s_state with
      | W_busy j when j.j_id = job_id -> slot.s_state <- W_idle
      | _ -> ());
      (match Hashtbl.find_opt t.jobs job_id with
      | None -> ()
      | Some job -> (
          t.in_flight <- t.in_flight - 1;
          Hashtbl.remove t.jobs job_id;
          Hashtbl.remove t.inflight_keys job.j_key;
          let waiters = List.rev job.j_waiters in
          job.j_waiters <- [];
          match artifact with
          | Error m ->
              let wall = Unix.gettimeofday () -. job.j_started in
              let msg = "worker returned an undecodable artifact: " ^ m in
              t.n_failed <- t.n_failed + 1;
              send job.j_conn (failed_result_frame ~job_id ~wall ~code:"worker_lost" msg);
              List.iter
                (fun (wid, wconn) ->
                  t.n_failed <- t.n_failed + 1;
                  send wconn (failed_result_frame ~job_id:wid ~wall ~code:"worker_lost" msg))
                waiters
          | Ok a ->
              cache_put_locked t job.j_key a;
              if store_hit then t.n_store_hits <- t.n_store_hits + 1;
              if job.j_cancelled && waiters = [] then begin
                t.n_cancelled <- t.n_cancelled + 1;
                send job.j_conn (cancelled_frame job_id)
              end
              else begin
                account t a ~store_hit;
                send job.j_conn
                  (Artifact.result_frame ~job:job_id ~cmd:job.j_spec.P.js_cmd ~cached:store_hit a)
              end;
              (* coalesced waiters get the same artifact, marked cached:
                 exactly one compile happened for the whole cohort *)
              List.iter
                (fun (wid, wconn) ->
                  if a.Artifact.a_ok then t.n_ok <- t.n_ok + 1 else t.n_failed <- t.n_failed + 1;
                  send wconn
                    (Artifact.result_frame ~job:wid ~cmd:job.j_spec.P.js_cmd ~cached:true a))
                waiters));
      pump_locked t slot;
      Condition.broadcast t.drain_cv)

let handle_worker_death t slot ~gen ~pid ~fd =
  Mutex.lock t.mutex;
  if slot.s_gen = gen then begin
    quiet_close fd;
    let status =
      match Unix.waitpid [] pid with
      | _, st -> st
      | exception Unix.Unix_error _ -> Unix.WEXITED 0
    in
    let reason = slot.s_kill_reason in
    slot.s_kill_reason <- K_none;
    slot.s_pid <- 0;
    let busy = match slot.s_state with W_busy j -> Some j | _ -> None in
    slot.s_state <- W_dead;
    if t.stopping_workers then () (* drain retirement: nothing to book-keep *)
    else begin
      t.n_crashes <- t.n_crashes + 1;
      slot.s_crashes <- slot.s_crashes + 1;
      let backoff =
        Float.min t.cfg.backoff_cap_s
          (t.cfg.backoff_base_s *. (2.0 ** float_of_int (slot.s_crashes - 1)))
      in
      slot.s_respawn_at <- Unix.gettimeofday () +. backoff;
      let status_str =
        match status with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
        | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
      in
      (match busy with
      | None -> ()
      | Some job -> (
          match reason with
          | K_deadline ->
              t.n_deadline_kills <- t.n_deadline_kills + 1;
              fail_inflight_locked t job ~code:"deadline_exceeded"
                (Printf.sprintf "job exceeded its %.1fs wall deadline and its worker was killed"
                   (job.j_deadline -. job.j_started))
          | K_hang | K_none ->
              if reason = K_hang then t.n_hang_kills <- t.n_hang_kills + 1;
              if job.j_cancelled && job.j_waiters = [] then begin
                t.in_flight <- t.in_flight - 1;
                t.n_cancelled <- t.n_cancelled + 1;
                Hashtbl.remove t.jobs job.j_id;
                Hashtbl.remove t.inflight_keys job.j_key;
                send job.j_conn (cancelled_frame job.j_id)
              end
              else if job.j_requeues < t.cfg.max_requeues then
                requeue_locked t slot job
              else
                fail_inflight_locked t job ~code:"worker_lost"
                  (Printf.sprintf
                     "worker died %d time(s) running this job (%s); giving up after %d \
                      re-dispatch(es)"
                     (job.j_requeues + 1) status_str job.j_requeues)));
      logv t "slot %d worker (pid %d) lost: %s, %s; respawn in %.0f ms" slot.s_idx pid
        status_str
        (match reason with
        | K_deadline -> "deadline kill"
        | K_hang -> "hang kill"
        | K_none -> "crash")
        (backoff *. 1000.0)
    end;
    Condition.broadcast t.drain_cv
  end;
  (* this reader is about to return: drop its handle so [t.readers] does
     not grow by one thread per respawn for the daemon's lifetime (the
     drain joins whatever is still listed; a thread that unlisted itself
     here has nothing left to do but return) *)
  (let self_id = Thread.id (Thread.self ()) in
   t.readers <- List.filter (fun th -> Thread.id th <> self_id) t.readers);
  Mutex.unlock t.mutex

let reader t slot ~gen ~pid ~fd =
  let rec loop () =
    match P.read_frame fd with
    | Error (P.F_eof | P.F_oversized _ | P.F_bad_json _) ->
        handle_worker_death t slot ~gen ~pid ~fd
    | Ok frame -> (
        (match Option.bind (P.member "type" frame) P.get_string with
        | Some "heartbeat" | Some "ready" ->
            locked t (fun () -> slot.s_last_beat <- Unix.gettimeofday ())
        | Some "event" -> (
            let job_id =
              Option.value (Option.bind (P.member "job" frame) P.get_int) ~default:(-1)
            in
            match locked t (fun () -> Hashtbl.find_opt t.jobs job_id) with
            | Some job -> send job.j_conn frame
            | None -> ())
        | Some "wresult" -> handle_wresult t slot frame
        | Some _ | None -> ());
        loop ())
  in
  loop ()

(* requires [t.mutex] held (or a single-threaded process, in [create]).
   The child inherits the parent image mid-lock: it must touch nothing of
   [t] beyond reading the snapshot of descriptors to close, and must
   leave through [Worker.main]'s [_exit] paths only. *)
let spawn_locked t slot =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      quiet_close parent_fd;
      List.iter quiet_close t.listeners;
      quiet_close t.stop_r;
      quiet_close t.stop_w;
      Array.iter (fun s -> if s.s_pid <> 0 then quiet_close s.s_fd) t.slots;
      List.iter (fun (_, c) -> quiet_close c.c_fd) t.conns;
      Worker.main
        {
          Worker.w_slot = slot.s_idx;
          w_gen = slot.s_gen + 1;
          w_hb_interval_s = t.cfg.hb_interval_s;
          w_store_dir = t.cfg.store_dir;
          w_chaos = t.cfg.chaos;
        }
        child_fd
  | pid ->
      Unix.close child_fd;
      slot.s_gen <- slot.s_gen + 1;
      slot.s_pid <- pid;
      slot.s_fd <- parent_fd;
      slot.s_state <- W_idle;
      slot.s_last_beat <- Unix.gettimeofday ();
      slot.s_kill_reason <- K_none;
      let gen = slot.s_gen in
      let th = Thread.create (fun () -> reader t slot ~gen ~pid ~fd:parent_fd) () in
      t.readers <- th :: t.readers;
      logv t "slot %d worker spawned (pid %d, gen %d)" slot.s_idx pid gen

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let supervise t =
  while not (Atomic.get t.sup_stop) do
    Unix.sleepf 0.02;
    locked t (fun () ->
        let now = Unix.gettimeofday () in
        Array.iter
          (fun slot ->
            match slot.s_state with
            | W_busy job when slot.s_kill_reason = K_none && now > job.j_deadline ->
                slot.s_kill_reason <- K_deadline;
                logv t "slot %d: job %d blew its deadline; killing pid %d" slot.s_idx job.j_id
                  slot.s_pid;
                (try Unix.kill slot.s_pid Sys.sigkill with Unix.Unix_error _ -> ())
            | W_busy _ | W_idle ->
                if
                  slot.s_kill_reason = K_none
                  && now -. slot.s_last_beat > t.cfg.hb_timeout_s
                then begin
                  slot.s_kill_reason <- K_hang;
                  logv t "slot %d: heartbeat %.2fs stale; killing pid %d" slot.s_idx
                    (now -. slot.s_last_beat) slot.s_pid;
                  try Unix.kill slot.s_pid Sys.sigkill with Unix.Unix_error _ -> ()
                end
            | W_dead ->
                if (not t.stopping_workers) && slot.s_pid = 0 && now >= slot.s_respawn_at
                then begin
                  t.n_respawns <- t.n_respawns + 1;
                  spawn_locked t slot;
                  pump_locked t slot
                end)
          t.slots;
        if Atomic.get t.stop_flag then Condition.broadcast t.drain_cv)
  done

(* ------------------------------------------------------------------ *)
(* Request handling (connection threads) *)

(* [Store.stats] walks the object tree on a cold scan (O(entries) stats;
   the store caches the result, but even a cached miss is disk I/O):
   take it OUTSIDE [t.mutex] so a monitoring poller can never stall
   dispatch or supervision.  [t.n_store_hits] is a single immediate
   field read — benign outside the lock for an advisory counter. *)
let store_stats_unlocked t =
  match t.store with
  | None -> None
  | Some st -> Some (Store.stats st)

let stats_frame t =
  let store_json =
    match store_stats_unlocked t with
    | None -> P.Obj [ ("enabled", P.Bool false) ]
    | Some s ->
        P.Obj
          [
            ("enabled", P.Bool true);
            ("entries", P.Int s.Store.st_entries);
            ("bytes", P.Int s.Store.st_bytes);
            ("quarantined", P.Int s.Store.st_quarantined);
            ("hits", P.Int t.n_store_hits);
          ]
  in
  locked t (fun () ->
      P.Obj
        [
          ("type", P.String "stats");
          ("proto", P.Int P.version);
          ("version", P.String P.binary_version);
          ("uptime_s", P.Float (Unix.gettimeofday () -. t.started));
          ("workers", P.Int t.cfg.workers);
          ("queue_depth", P.Int t.queued);
          ("in_flight", P.Int t.in_flight);
          ("queue_capacity", P.Int t.cfg.queue_capacity);
          ( "shed_watermark",
            match t.cfg.shed_watermark with Some w -> P.Int w | None -> P.Null );
          ("draining", P.Bool (Atomic.get t.stop_flag));
          ("connections_active", P.Int (List.length t.conns));
          ("connections_total", P.Int t.n_conns_total);
          ( "jobs",
            P.Obj
              [
                ("submitted", P.Int t.n_submitted);
                ("ok", P.Int t.n_ok);
                ("failed", P.Int t.n_failed);
                ("cancelled", P.Int t.n_cancelled);
                ("rejected", P.Int t.n_rejected);
                ("shed", P.Int t.n_shed);
                ("coalesced", P.Int t.n_coalesced);
              ] );
          ( "cache",
            P.Obj
              [
                ("entries", P.Int (Hashtbl.length t.cache));
                ("hits", P.Int t.n_cache_hits);
                ("store_hits", P.Int t.n_store_hits);
              ] );
          ("store", store_json);
          ( "supervisor",
            P.Obj
              [
                ("crashes", P.Int t.n_crashes);
                ("respawns", P.Int t.n_respawns);
                ("requeued", P.Int t.n_requeued);
                ("deadline_kills", P.Int t.n_deadline_kills);
                ("hang_kills", P.Int t.n_hang_kills);
              ] );
          ( "sched",
            P.Obj
              [
                ("passes", P.Int t.st_passes);
                ("warm_passes", P.Int t.st_warm);
                ("cold_passes", P.Int t.st_cold);
                ("queries", P.Int t.st_queries);
                ("actions", P.Int t.st_actions);
              ] );
        ])

let health_frame t =
  let store_json =
    match store_stats_unlocked t with
    | None -> P.Obj [ ("enabled", P.Bool false) ]
    | Some s ->
        P.Obj
          [
            ("enabled", P.Bool true);
            ("entries", P.Int s.Store.st_entries);
            ("quarantined", P.Int s.Store.st_quarantined);
          ]
  in
  locked t (fun () ->
      let now = Unix.gettimeofday () in
      let degraded = ref false in
      let workers =
        Array.to_list t.slots
        |> List.map (fun s ->
               let state, inflight =
                 match s.s_state with
                 | W_idle -> ("idle", 0)
                 | W_busy _ -> ("busy", 1)
                 | W_dead ->
                     degraded := true;
                     ("dead", 0)
               in
               P.Obj
                 [
                   ("slot", P.Int s.s_idx);
                   ("pid", P.Int s.s_pid);
                   ("alive", P.Bool (s.s_pid <> 0));
                   ("state", P.String state);
                   ("inflight", P.Int inflight);
                   ("crashes", P.Int s.s_crashes);
                   ("queue", P.Int (Queue.length s.s_queue));
                   ( "heartbeat_age_s",
                     P.Float (if s.s_pid = 0 then -1.0 else now -. s.s_last_beat) );
                 ])
      in
      P.Obj
        [
          ("type", P.String "health");
          ("status", P.String (if !degraded then "degraded" else "ok"));
          ("draining", P.Bool (Atomic.get t.stop_flag));
          ("workers", P.List workers);
          ( "queue",
            P.Obj
              [
                ("depth", P.Int t.queued);
                ("in_flight", P.Int t.in_flight);
                ("capacity", P.Int t.cfg.queue_capacity);
                ( "watermark",
                  match t.cfg.shed_watermark with Some w -> P.Int w | None -> P.Null );
              ] );
          ("store", store_json);
        ])

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    (* one byte down the self-pipe wakes the listener's select; writing
       to a pipe is async-signal-safe, so this is the SIGTERM body *)
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

type admission =
  | A_hit of int * Artifact.t
  | A_queued of int
  | A_coalesced of int  (** riding another job's in-flight compile *)
  | A_rejected of string * string * (string * P.json) list

let handle_submit t conn spec =
  match Design_db.load spec.P.js_design with
  | Error m ->
      (* still a per-job answer: accept, then fail with a typed code, so
         the client's submit/await pair sees the same sequence as any
         other failing job *)
      let id =
        locked t (fun () ->
            let id = t.next_job in
            t.next_job <- t.next_job + 1;
            t.n_submitted <- t.n_submitted + 1;
            t.n_failed <- t.n_failed + 1;
            id)
      in
      send conn (P.Obj [ ("type", P.String "accepted"); ("job", P.Int id) ]);
      send conn (P.error_frame ~job:id ~code:"bad_design" m)
  | Ok design -> (
      let key = Artifact.key_of_spec ~design spec in
      let verdict =
        locked t (fun () ->
            if Atomic.get t.stop_flag then
              A_rejected ("draining", "daemon is draining; resubmit elsewhere", [])
            else
              match Hashtbl.find_opt t.cache key with
              | Some a ->
                  (* cache hits are served even beyond the shed watermark:
                     they cost microseconds and relieve pressure *)
                  let id = t.next_job in
                  t.next_job <- t.next_job + 1;
                  t.n_submitted <- t.n_submitted + 1;
                  t.n_cache_hits <- t.n_cache_hits + 1;
                  if a.Artifact.a_ok then t.n_ok <- t.n_ok + 1
                  else t.n_failed <- t.n_failed + 1;
                  A_hit (id, a)
              | None -> (
                match Hashtbl.find_opt t.inflight_keys key with
                | Some owner ->
                    (* an identical compile is already queued or running:
                       ride it.  Like cache hits, coalesced submits are
                       admitted even beyond the shed watermark — they add
                       no work, only one more recipient of the answer. *)
                    let id = t.next_job in
                    t.next_job <- t.next_job + 1;
                    t.n_submitted <- t.n_submitted + 1;
                    t.n_coalesced <- t.n_coalesced + 1;
                    owner.j_waiters <- (id, conn) :: owner.j_waiters;
                    A_coalesced id
                | None ->
                  if t.queued >= t.cfg.queue_capacity then
                    A_rejected
                      ( "queue_full",
                        Printf.sprintf "admission queue is full (%d job(s) pending)" t.queued,
                        [] )
                  else if
                    match t.cfg.shed_watermark with
                    | Some w -> t.queued >= w
                    | None -> false
                  then begin
                    t.n_shed <- t.n_shed + 1;
                    A_rejected
                      ( "overloaded",
                        Printf.sprintf
                          "daemon is shedding load (%d job(s) pending); retry with backoff"
                          t.queued,
                        [ ("retry_after_ms", P.Int 200) ] )
                  end
                  else begin
                    let id = t.next_job in
                    t.next_job <- t.next_job + 1;
                    t.n_submitted <- t.n_submitted + 1;
                    t.queued <- t.queued + 1;
                    let job =
                      {
                        j_id = id;
                        j_spec = spec;
                        j_conn = conn;
                        j_key = key;
                        j_cancelled = false;
                        j_waiters = [];
                        j_requeues = 0;
                        j_started = 0.0;
                        j_deadline = 0.0;
                      }
                    in
                    Hashtbl.replace t.jobs id job;
                    Hashtbl.replace t.inflight_keys key job;
                    let slot = t.slots.(Hashtbl.hash key mod Array.length t.slots) in
                    Queue.push job slot.s_queue;
                    pump_locked t slot;
                    A_queued id
                  end))
      in
      match verdict with
      | A_rejected (code, msg, extra) ->
          locked t (fun () -> t.n_rejected <- t.n_rejected + 1);
          send conn (P.error_frame ~extra ~code msg)
      | A_hit (id, a) ->
          send conn (P.Obj [ ("type", P.String "accepted"); ("job", P.Int id) ]);
          send conn (Artifact.result_frame ~job:id ~cmd:spec.P.js_cmd ~cached:true a)
      | A_queued id | A_coalesced id ->
          send conn (P.Obj [ ("type", P.String "accepted"); ("job", P.Int id) ]))

let handle_cancel t conn id =
  let found =
    locked t (fun () ->
        match Hashtbl.find_opt t.jobs id with
        | Some job ->
            job.j_cancelled <- true;
            true
        | None -> false)
  in
  send conn (P.Obj [ ("type", P.String "cancelling"); ("job", P.Int id); ("found", P.Bool found) ])

let hello_frame =
  P.Obj
    [
      ("type", P.String "hello");
      ("proto", P.Int P.version);
      ("version", P.String P.binary_version);
    ]

let conn_loop t conn =
  let greeted = ref false in
  let continue = ref true in
  while !continue && conn.c_alive do
    match P.read_frame conn.c_fd with
    | Error P.F_eof -> continue := false
    | Error (P.F_oversized n) ->
        send conn
          (P.error_frame ~code:"frame_too_large"
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n P.max_frame))
    | Error (P.F_bad_json m) -> send conn (P.error_frame ~code:"bad_json" m)
    | Ok json -> (
        match P.request_of_json json with
        | Error m -> send conn (P.error_frame ~code:"bad_request" m)
        | Ok (P.Hello v) ->
            if v = P.version then begin
              greeted := true;
              send conn hello_frame
            end
            else begin
              send conn
                (P.error_frame ~code:"proto_mismatch"
                   (Printf.sprintf "daemon speaks protocol %d, client sent %d" P.version v));
              continue := false
            end
        | Ok _ when not !greeted ->
            send conn (P.error_frame ~code:"hello_required" "open the session with a hello frame")
        | Ok (P.Submit spec) -> handle_submit t conn spec
        | Ok (P.Cancel id) -> handle_cancel t conn id
        | Ok P.Stats -> send conn (stats_frame t)
        | Ok P.Health -> send conn (health_frame t)
        | Ok P.Shutdown ->
            send conn (P.Obj [ ("type", P.String "draining") ]);
            stop t)
  done;
  close_conn conn;
  locked t (fun () -> t.conns <- List.filter (fun (_, c) -> c.c_id <> conn.c_id) t.conns);
  logv t "connection %d closed" conn.c_id

(* ------------------------------------------------------------------ *)
(* Listener + lifecycle *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* a previous daemon may have crashed without unlinking; refuse only
       if something is still accepting there *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    quiet_close probe;
    if live then failwith (Printf.sprintf "socket %s is already served by a live daemon" path);
    Sys.remove path
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let create cfg =
  try
    let cfg = { cfg with workers = max 1 cfg.workers; cache_cap = max 1 cfg.cache_cap } in
    let store =
      match cfg.store_dir with
      | None -> None
      | Some dir -> (
          (* recovery scan: wipe stale tmp files, quarantine damage *)
          match Store.open_ dir with
          | Ok st -> Some st
          | Error m -> failwith (Printf.sprintf "artifact store %s: %s" dir m))
    in
    let unix_l = bind_unix cfg.socket in
    let listeners =
      match cfg.tcp_port with
      | None -> [ unix_l ]
      | Some port -> (
          try [ unix_l; bind_tcp port ]
          with e ->
            quiet_close unix_l;
            (try Sys.remove cfg.socket with Sys_error _ -> ());
            raise e)
    in
    let stop_r, stop_w = Unix.pipe () in
    let now = Unix.gettimeofday () in
    let slots =
      Array.init cfg.workers (fun i ->
          {
            s_idx = i;
            s_queue = Queue.create ();
            s_state = W_dead;
            s_pid = 0;
            s_fd = Unix.stdin (* placeholder; meaningless while s_pid = 0 *);
            s_gen = 0;
            s_last_beat = now;
            s_crashes = 0;
            s_respawn_at = now;
            s_kill_reason = K_none;
          })
    in
    let t =
      {
        cfg;
        listeners;
        store;
        mutex = Mutex.create ();
        drain_cv = Condition.create ();
        cache = Hashtbl.create 64;
        cache_order = Queue.create ();
        jobs = Hashtbl.create 16;
        inflight_keys = Hashtbl.create 16;
        slots;
        next_job = 1;
        next_conn = 1;
        queued = 0;
        in_flight = 0;
        conns = [];
        readers = [];
        supervisor = None;
        stopping_workers = false;
        sup_stop = Atomic.make false;
        n_submitted = 0;
        n_ok = 0;
        n_failed = 0;
        n_cancelled = 0;
        n_rejected = 0;
        n_shed = 0;
        n_cache_hits = 0;
        n_coalesced = 0;
        n_store_hits = 0;
        n_conns_total = 0;
        n_crashes = 0;
        n_respawns = 0;
        n_requeued = 0;
        n_deadline_kills = 0;
        n_hang_kills = 0;
        st_passes = 0;
        st_warm = 0;
        st_cold = 0;
        st_queries = 0;
        st_actions = 0;
        started = now;
        stop_flag = Atomic.make false;
        stop_r;
        stop_w;
      }
    in
    (* the first worker generation forks here, before any other thread
       exists, so these children are born from a single-threaded image.
       Respawn forks later come from the supervisor thread of a
       multi-threaded parent, and those children are NOT minimal: each
       runs a full [Worker.main] — heartbeat thread, store I/O, whole
       compiles.  That leans on the C library's atfork handling to leave
       malloc/stdio usable in the child (the standard pre-fork-server
       bargain, exercised heavily by the chaos suite).  If stronger
       isolation is ever needed, respawn via fork+exec of the hlsc
       binary in a worker mode so children start from a clean image. *)
    Array.iter (fun slot -> spawn_locked t slot) t.slots;
    t.supervisor <- Some (Thread.create supervise t);
    Ok t
  with
  | Failure m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | Sys_error m -> Error m

let accept_one t listener =
  match Unix.accept listener with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.ECONNABORTED), _, _) -> ()
  | fd, _ ->
      let conn =
        locked t (fun () ->
            let id = t.next_conn in
            t.next_conn <- t.next_conn + 1;
            t.n_conns_total <- t.n_conns_total + 1;
            {
              c_id = id;
              c_fd = fd;
              c_wmutex = Mutex.create ();
              c_wcv = Condition.create ();
              c_outq = Queue.create ();
              c_alive = true;
              c_closing = false;
              c_writer = None;
            })
      in
      logv t "connection %d accepted" conn.c_id;
      conn.c_writer <- Some (Thread.create conn_writer conn);
      let th = Thread.create (fun () -> conn_loop t conn) () in
      locked t (fun () -> t.conns <- (th, conn) :: t.conns)

let drain t =
  (* 0. snapshot what the signal interrupted, for the final report *)
  let outstanding, done_before =
    locked t (fun () -> (t.queued + t.in_flight, t.n_ok + t.n_failed + t.n_cancelled))
  in
  logv t "draining: %d job(s) outstanding" outstanding;
  (* 1. no new connections *)
  List.iter quiet_close t.listeners;
  (try Sys.remove t.cfg.socket with Sys_error _ -> ());
  (* 2. let the supervised fleet answer every queued and in-flight job
     (the supervisor keeps respawning crashed workers meanwhile) *)
  Mutex.lock t.mutex;
  while t.queued > 0 || t.in_flight > 0 do
    Condition.wait t.drain_cv t.mutex
  done;
  t.stopping_workers <- true;
  Mutex.unlock t.mutex;
  (* 3. stop the supervisor, then retire the workers: half-close their
     pipes so they read EOF and [_exit 0]; each reader reaps its pid *)
  Atomic.set t.sup_stop true;
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  locked t (fun () ->
      Array.iter
        (fun s ->
          if s.s_pid <> 0 then
            try Unix.shutdown s.s_fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
        t.slots);
  List.iter Thread.join (locked t (fun () -> t.readers));
  (* 4. persist the store index *)
  (match t.store with
  | None -> ()
  | Some st -> (
      match Store.flush_index st with
      | Ok () -> ()
      | Error m -> Printf.eprintf "hlsc serve: store index flush failed: %s\n%!" m));
  (* 5. unblock and join the connection threads.  Receive side only:
     each [conn_loop] wakes on the EOF and runs [close_conn], which
     still flushes the result frames its writer owes the client before
     shutting the send side *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun (_, c) -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (th, _) -> Thread.join th) conns;
  quiet_close t.stop_r;
  quiet_close t.stop_w;
  (* 6. final report: queued-vs-completed across the drain, plus store
     and supervision accounting *)
  let done_during = t.n_ok + t.n_failed + t.n_cancelled - done_before in
  let store_line =
    match t.store with
    | None -> "store: disabled"
    | Some st ->
        let s = Store.stats st in
        Printf.sprintf "store: %d entr(ies), %d quarantined, %d hit(s), index flushed"
          s.Store.st_entries s.Store.st_quarantined t.n_store_hits
  in
  Printf.eprintf
    "hlsc serve: drained after %.1fs — %d job(s) outstanding at signal, %d completed during \
     drain; %d job(s): %d ok, %d failed, %d cancelled, %d rejected (%d shed); cache: %d \
     entries, %d hit(s); %s; supervision: %d crash(es), %d respawn(s), %d requeue(s), %d \
     deadline kill(s), %d hang kill(s); passes: %d (%d warm / %d cold)\n\
     %!"
    (Unix.gettimeofday () -. t.started)
    outstanding done_during t.n_submitted t.n_ok t.n_failed t.n_cancelled t.n_rejected t.n_shed
    (Hashtbl.length t.cache) t.n_cache_hits store_line t.n_crashes t.n_respawns t.n_requeued
    t.n_deadline_kills t.n_hang_kills t.st_passes t.st_warm t.st_cold

let serve t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      match Unix.select (t.stop_r :: t.listeners) [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
          if List.mem t.stop_r readable then () (* drain request *)
          else begin
            List.iter (fun l -> if List.mem l readable then accept_one t l) t.listeners;
            loop ()
          end
    end
  in
  loop ();
  Atomic.set t.stop_flag true;
  drain t

let run cfg =
  match create cfg with
  | Error m -> Error m
  | Ok t ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t));
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t));
      Printf.eprintf
        "hlsc serve: listening on %s%s (%d worker process(es), protocol %d%s%s)\n%!" cfg.socket
        (match cfg.tcp_port with
        | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
        | None -> "")
        (max 1 cfg.workers) P.version
        (match cfg.store_dir with
        | Some d -> Printf.sprintf ", store %s" d
        | None -> "")
        (match cfg.chaos with Some _ -> ", CHAOS INJECTION ON" | None -> "");
      serve t;
      Ok ()
