(** Daemon implementation.  See the interface for the threading model;
    the invariants that matter here:

    - [t.mutex] guards the job table, admission counters, statistics and
      the memo cache.  Rendering of results (which touches the netlist's
      internal memo tables) happens either on the worker domain that owns
      the fresh result or under [t.mutex] for cache hits, so no two
      domains ever mutate one netlist concurrently.
    - Every frame write goes through [send] (per-connection writer mutex
      + dead-peer latch), so a client that disconnects mid-stream turns
      into silently dropped frames, never an unhandled [EPIPE].
    - [stop] is just an atomic flag plus one self-pipe byte: safe from a
      signal handler.  The listener thread notices and runs the drain. *)

module Flow = Hls_flow.Flow
module Diag = Hls_diag.Diag
module Dse = Hls_dse.Dse
module P = Protocol

type config = {
  socket : string;
  tcp_port : int option;
  workers : int;
  queue_capacity : int;
  verbose : bool;
}

let default_config =
  { socket = "hlsc.sock"; tcp_port = None; workers = 2; queue_capacity = 64; verbose = false }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;
  mutable c_alive : bool;  (** cleared on the first failed write *)
}

type job_state = J_queued | J_running | J_done

type job = {
  j_id : int;
  j_spec : P.job_spec;
  j_conn : conn;
  mutable j_state : job_state;  (** guarded by [t.mutex] *)
  mutable j_cancelled : bool;  (** guarded by [t.mutex] *)
}

(* one memo-cache entry: the flow result plus lazily rendered per-command
   output (rendered on the worker domain that produced the result, or
   under [t.mutex] on a hit with a new command) *)
type entry = {
  e_flow : (Flow.t, Diag.t) result;
  e_wall : float;
  e_rendered : (P.cmd, string) Hashtbl.t;
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  pool : Dse.Pool.t;
  mutex : Mutex.t;
  cache : (string * Dse.point, entry) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_job : int;
  mutable next_conn : int;
  mutable queued : int;
  mutable in_flight : int;
  mutable conns : (Thread.t * conn) list;
  (* statistics *)
  mutable n_submitted : int;
  mutable n_ok : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable n_rejected : int;
  mutable n_cache_hits : int;
  mutable n_conns_total : int;
  mutable st_passes : int;
  mutable st_warm : int;
  mutable st_cold : int;
  mutable st_queries : int;
  mutable st_actions : int;
  started : float;
  stop_flag : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let logv t fmt =
  Printf.ksprintf (fun s -> if t.cfg.verbose then Printf.eprintf "hlsc serve: %s\n%!" s) fmt

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Frame output *)

let send conn frame =
  Mutex.lock conn.c_wmutex;
  (if conn.c_alive then
     try P.write_frame conn.c_fd frame
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) | Sys_error _ ->
       conn.c_alive <- false);
  Mutex.unlock conn.c_wmutex

let error_frame ?job ~code msg =
  P.Obj
    ((match job with Some id -> [ ("job", P.Int id) ] | None -> [])
    @ [ ("type", P.String "error"); ("code", P.String code); ("message", P.String msg) ])

(* ------------------------------------------------------------------ *)
(* Job execution *)

let options_of_spec (js : P.job_spec) =
  {
    Flow.default_options with
    Flow.ii = js.P.js_ii;
    clock_ps = js.P.js_clock_ps;
    min_latency = js.P.js_min_latency;
    max_latency = js.P.js_max_latency;
    verify = js.P.js_verify;
    sched =
      {
        Hls_core.Scheduler.default_options with
        max_passes =
          Option.value js.P.js_max_passes
            ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
        timeout_s = js.P.js_timeout_s;
      };
  }

let point_of_spec (js : P.job_spec) =
  Dse.point ?ii:js.P.js_ii ?min_latency:js.P.js_min_latency ?max_latency:js.P.js_max_latency
    ~clock_ps:js.P.js_clock_ps ()

(* render under the caller's exclusivity guarantee (worker domain owning a
   fresh result, or [t.mutex] held for a shared cached one) *)
let rendered entry cmd =
  match Hashtbl.find_opt entry.e_rendered cmd with
  | Some s -> s
  | None ->
      let s = match entry.e_flow with Ok f -> Render.output cmd f | Error _ -> "" in
      Hashtbl.replace entry.e_rendered cmd s;
      s

let result_frame t job ~cached ~wall entry =
  let base = [ ("type", P.String "result"); ("job", P.Int job.j_id) ] in
  match entry.e_flow with
  | Ok f ->
      let output = rendered entry job.j_spec.P.js_cmd in
      P.Obj
        (base
        @ [
            ("status", P.String "ok");
            ("output", P.String output);
            ("summary", P.String (Flow.summary f));
            ("tier", P.String (Flow.tier_to_string f.Flow.f_tier));
            ("notes", P.List (List.map (fun n -> P.String (Diag.to_string n)) f.Flow.f_notes));
            ("cached", P.Bool cached);
            ("wall_s", P.Float wall);
            ("li", P.Int f.Flow.f_sched.Hls_core.Scheduler.s_li);
            ("ii", P.Int f.Flow.f_cycles_per_iter);
            ("delay_ps", P.Float f.Flow.f_delay_ps);
            ("area", P.Float f.Flow.f_area.Hls_rtl.Stats.a_total);
            ("power_mw", P.Float f.Flow.f_power_mw);
          ])
  | Error d ->
      ignore t;
      P.Obj
        (base
        @ [
            ("status", P.String "error");
            ("diag", P.String (Diag.to_string d));
            ("diag_json", P.String (Diag.to_json d));
            ("code", P.String d.Diag.d_code);
            ("cached", P.Bool cached);
            ("wall_s", P.Float wall);
          ])

let cancelled_frame job =
  P.Obj
    [
      ("type", P.String "result");
      ("job", P.Int job.j_id);
      ("status", P.String "cancelled");
      ("cached", P.Bool false);
      ("wall_s", P.Float 0.0);
    ]

let account t = function
  | Ok (f : Flow.t) ->
      let st = f.Flow.f_stats in
      t.n_ok <- t.n_ok + 1;
      t.st_passes <- t.st_passes + st.Hls_core.Scheduler.st_passes;
      t.st_warm <- t.st_warm + st.Hls_core.Scheduler.st_warm_passes;
      t.st_cold <- t.st_cold + st.Hls_core.Scheduler.st_cold_passes;
      t.st_queries <- t.st_queries + st.Hls_core.Scheduler.st_queries;
      t.st_actions <- t.st_actions + st.Hls_core.Scheduler.st_actions
  | Error _ -> t.n_failed <- t.n_failed + 1

(* runs on a worker domain *)
let exec_job t job =
  let finish_state () =
    locked t (fun () ->
        job.j_state <- J_done;
        t.in_flight <- t.in_flight - 1;
        Hashtbl.remove t.jobs job.j_id)
  in
  let cancelled_at_start =
    locked t (fun () ->
        t.queued <- t.queued - 1;
        t.in_flight <- t.in_flight + 1;
        if job.j_cancelled then true
        else begin
          job.j_state <- J_running;
          false
        end)
  in
  if cancelled_at_start then begin
    locked t (fun () -> t.n_cancelled <- t.n_cancelled + 1);
    send job.j_conn (cancelled_frame job);
    finish_state ()
  end
  else begin
    let spec = job.j_spec in
    match Design_db.load spec.P.js_design with
    | Error m ->
        locked t (fun () -> t.n_failed <- t.n_failed + 1);
        send job.j_conn (error_frame ~job:job.j_id ~code:"bad_design" m);
        finish_state ()
    | Ok design ->
        let options = options_of_spec spec in
        let key = (Dse.base_fingerprint ~options design, point_of_spec spec) in
        let hit = locked t (fun () -> Hashtbl.find_opt t.cache key) in
        (match hit with
        | Some entry ->
            let frame =
              locked t (fun () ->
                  t.n_cache_hits <- t.n_cache_hits + 1;
                  (* outcome counters track served results; the st_* pass
                     counters stay untouched — no scheduling ran *)
                  (match entry.e_flow with
                  | Ok _ -> t.n_ok <- t.n_ok + 1
                  | Error _ -> t.n_failed <- t.n_failed + 1);
                  result_frame t job ~cached:true ~wall:entry.e_wall entry)
            in
            send job.j_conn frame
        | None ->
            let trace =
              if spec.P.js_trace then
                Some
                  (Hls_core.Trace.create
                     ~sink:(fun level text ->
                       send job.j_conn
                         (P.Obj
                            [
                              ("type", P.String "event");
                              ("job", P.Int job.j_id);
                              ("level", P.String (Hls_core.Trace.level_to_string level));
                              ("text", P.String text);
                            ]))
                     ())
              else None
            in
            let t0 = Unix.gettimeofday () in
            let flow = Flow.run ~options ?trace design in
            let wall = Unix.gettimeofday () -. t0 in
            let entry = { e_flow = flow; e_wall = wall; e_rendered = Hashtbl.create 4 } in
            (* render on this domain while we exclusively own the result *)
            ignore (rendered entry spec.P.js_cmd);
            let was_cancelled =
              locked t (fun () ->
                  Hashtbl.replace t.cache key entry;
                  account t flow;
                  job.j_cancelled)
            in
            if was_cancelled then begin
              locked t (fun () -> t.n_cancelled <- t.n_cancelled + 1);
              send job.j_conn (cancelled_frame job)
            end
            else send job.j_conn (result_frame t job ~cached:false ~wall entry));
        finish_state ()
  end

(* ------------------------------------------------------------------ *)
(* Request handling (connection threads) *)

let stats_frame t =
  locked t (fun () ->
      P.Obj
        [
          ("type", P.String "stats");
          ("proto", P.Int P.version);
          ("version", P.String P.binary_version);
          ("uptime_s", P.Float (Unix.gettimeofday () -. t.started));
          ("workers", P.Int t.cfg.workers);
          ("queue_depth", P.Int t.queued);
          ("in_flight", P.Int t.in_flight);
          ("queue_capacity", P.Int t.cfg.queue_capacity);
          ("draining", P.Bool (Atomic.get t.stop_flag));
          ("connections_active", P.Int (List.length t.conns));
          ("connections_total", P.Int t.n_conns_total);
          ( "jobs",
            P.Obj
              [
                ("submitted", P.Int t.n_submitted);
                ("ok", P.Int t.n_ok);
                ("failed", P.Int t.n_failed);
                ("cancelled", P.Int t.n_cancelled);
                ("rejected", P.Int t.n_rejected);
              ] );
          ( "cache",
            P.Obj [ ("entries", P.Int (Hashtbl.length t.cache)); ("hits", P.Int t.n_cache_hits) ]
          );
          ( "sched",
            P.Obj
              [
                ("passes", P.Int t.st_passes);
                ("warm_passes", P.Int t.st_warm);
                ("cold_passes", P.Int t.st_cold);
                ("queries", P.Int t.st_queries);
                ("actions", P.Int t.st_actions);
              ] );
        ])

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    (* one byte down the self-pipe wakes the listener's select; writing
       to a pipe is async-signal-safe, so this is the SIGTERM body *)
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let handle_submit t conn spec =
  let verdict =
    locked t (fun () ->
        if Atomic.get t.stop_flag then Error ("draining", "daemon is draining; resubmit elsewhere")
        else if t.queued >= t.cfg.queue_capacity then
          Error
            ( "queue_full",
              Printf.sprintf "admission queue is full (%d job(s) pending)" t.queued )
        else begin
          let id = t.next_job in
          t.next_job <- t.next_job + 1;
          t.n_submitted <- t.n_submitted + 1;
          t.queued <- t.queued + 1;
          let job = { j_id = id; j_spec = spec; j_conn = conn; j_state = J_queued; j_cancelled = false } in
          Hashtbl.replace t.jobs id job;
          Ok job
        end)
  in
  match verdict with
  | Error (code, msg) ->
      locked t (fun () -> t.n_rejected <- t.n_rejected + 1);
      send conn (error_frame ~code msg)
  | Ok job ->
      send conn (P.Obj [ ("type", P.String "accepted"); ("job", P.Int job.j_id) ]);
      let accepted = Dse.Pool.submit t.pool (fun () -> exec_job t job) in
      if not accepted then begin
        (* pool already draining: roll the admission back *)
        locked t (fun () ->
            t.queued <- t.queued - 1;
            Hashtbl.remove t.jobs job.j_id);
        send conn (error_frame ~job:job.j_id ~code:"draining" "daemon is draining")
      end

let handle_cancel t conn id =
  let found =
    locked t (fun () ->
        match Hashtbl.find_opt t.jobs id with
        | Some job ->
            job.j_cancelled <- true;
            true
        | None -> false)
  in
  send conn (P.Obj [ ("type", P.String "cancelling"); ("job", P.Int id); ("found", P.Bool found) ])

let hello_frame =
  P.Obj
    [
      ("type", P.String "hello");
      ("proto", P.Int P.version);
      ("version", P.String P.binary_version);
    ]

let conn_loop t conn =
  let greeted = ref false in
  let continue = ref true in
  while !continue && conn.c_alive do
    match P.read_frame conn.c_fd with
    | Error P.F_eof -> continue := false
    | Error (P.F_oversized n) ->
        send conn
          (error_frame ~code:"frame_too_large"
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n P.max_frame))
    | Error (P.F_bad_json m) -> send conn (error_frame ~code:"bad_json" m)
    | Ok json -> (
        match P.request_of_json json with
        | Error m -> send conn (error_frame ~code:"bad_request" m)
        | Ok (P.Hello v) ->
            if v = P.version then begin
              greeted := true;
              send conn hello_frame
            end
            else begin
              send conn
                (error_frame ~code:"proto_mismatch"
                   (Printf.sprintf "daemon speaks protocol %d, client sent %d" P.version v));
              continue := false
            end
        | Ok _ when not !greeted ->
            send conn (error_frame ~code:"hello_required" "open the session with a hello frame")
        | Ok (P.Submit spec) -> handle_submit t conn spec
        | Ok (P.Cancel id) -> handle_cancel t conn id
        | Ok P.Stats -> send conn (stats_frame t)
        | Ok P.Shutdown ->
            send conn (P.Obj [ ("type", P.String "draining") ]);
            stop t)
  done;
  conn.c_alive <- false;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun (_, c) -> c.c_id <> conn.c_id) t.conns);
  logv t "connection %d closed" conn.c_id

(* ------------------------------------------------------------------ *)
(* Listener + lifecycle *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* a previous daemon may have crashed without unlinking; refuse only
       if something is still accepting there *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "socket %s is already served by a live daemon" path);
    Sys.remove path
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let create cfg =
  try
    let unix_l = bind_unix cfg.socket in
    let listeners =
      match cfg.tcp_port with
      | None -> [ unix_l ]
      | Some port -> (
          try [ unix_l; bind_tcp port ]
          with e ->
            (try Unix.close unix_l with Unix.Unix_error _ -> ());
            (try Sys.remove cfg.socket with Sys_error _ -> ());
            raise e)
    in
    let stop_r, stop_w = Unix.pipe () in
    Ok
      {
        cfg = { cfg with workers = max 1 cfg.workers };
        listeners;
        pool = Dse.Pool.create ~workers:(max 1 cfg.workers) ();
        mutex = Mutex.create ();
        cache = Hashtbl.create 64;
        jobs = Hashtbl.create 16;
        next_job = 1;
        next_conn = 1;
        queued = 0;
        in_flight = 0;
        conns = [];
        n_submitted = 0;
        n_ok = 0;
        n_failed = 0;
        n_cancelled = 0;
        n_rejected = 0;
        n_cache_hits = 0;
        n_conns_total = 0;
        st_passes = 0;
        st_warm = 0;
        st_cold = 0;
        st_queries = 0;
        st_actions = 0;
        started = Unix.gettimeofday ();
        stop_flag = Atomic.make false;
        stop_r;
        stop_w;
      }
  with
  | Failure m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | Sys_error m -> Error m

let accept_one t listener =
  match Unix.accept listener with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.ECONNABORTED), _, _) -> ()
  | fd, _ ->
      let conn =
        locked t (fun () ->
            let id = t.next_conn in
            t.next_conn <- t.next_conn + 1;
            t.n_conns_total <- t.n_conns_total + 1;
            { c_id = id; c_fd = fd; c_wmutex = Mutex.create (); c_alive = true })
      in
      logv t "connection %d accepted" conn.c_id;
      let th = Thread.create (fun () -> conn_loop t conn) () in
      locked t (fun () -> t.conns <- (th, conn) :: t.conns)

let drain t =
  logv t "draining: %d queued, %d in flight"
    (locked t (fun () -> t.queued))
    (locked t (fun () -> t.in_flight));
  (* 1. no new connections *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  (try Sys.remove t.cfg.socket with Sys_error _ -> ());
  (* 2. finish queued + in-flight jobs, join every worker domain *)
  Dse.Pool.shutdown t.pool;
  (* 3. unblock and join the connection threads *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun (_, c) -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (th, _) -> Thread.join th) conns;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  (* 4. flush the cache/job statistics *)
  Printf.eprintf
    "hlsc serve: drained after %.1fs — %d job(s): %d ok, %d failed, %d cancelled, %d rejected; \
     cache: %d entries, %d hit(s); passes: %d (%d warm / %d cold)\n%!"
    (Unix.gettimeofday () -. t.started)
    t.n_submitted t.n_ok t.n_failed t.n_cancelled t.n_rejected (Hashtbl.length t.cache)
    t.n_cache_hits t.st_passes t.st_warm t.st_cold

let serve t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      match Unix.select (t.stop_r :: t.listeners) [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
          if List.mem t.stop_r readable then () (* drain request *)
          else begin
            List.iter (fun l -> if List.mem l readable then accept_one t l) t.listeners;
            loop ()
          end
    end
  in
  loop ();
  Atomic.set t.stop_flag true;
  drain t

let run cfg =
  match create cfg with
  | Error m -> Error m
  | Ok t ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t));
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t));
      Printf.eprintf "hlsc serve: listening on %s%s (%d worker(s), protocol %d)\n%!" cfg.socket
        (match cfg.tcp_port with
        | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
        | None -> "")
        (max 1 cfg.workers) P.version;
      serve t;
      Ok ()
