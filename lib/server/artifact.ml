(** Serializable compile artifacts.  See the interface for the role; the
    encoding notes that matter here:

    - [to_json]/[of_json] are a strict pair: every field is explicit, and
      decode fails loudly on anything missing or mistyped, because store
      entries travel through disk and worker pipes where partial writes
      and corruption are expected events (the store's checksum catches
      byte damage; this codec catches schema damage).
    - Renders are stored per command under the wire command names, so a
      store entry is self-describing and survives binary restarts. *)

module Flow = Hls_flow.Flow
module Diag = Hls_diag.Diag
module Dse = Hls_dse.Dse
module P = Protocol

type t = {
  a_ok : bool;
  a_renders : (P.cmd * string) list;
  a_summary : string;
  a_tier : string;
  a_notes : string list;
  a_li : int;
  a_ii : int;
  a_delay_ps : float;
  a_area : float;
  a_power_mw : float;
  a_diag : string option;
  a_diag_json : string option;
  a_code : string option;
  a_wall_s : float;
  a_passes : int;
  a_warm : int;
  a_cold : int;
  a_queries : int;
  a_actions : int;
}

let all_cmds = [ P.C_schedule; P.C_pipeline; P.C_flow ]

let of_flow ~wall_s = function
  | Ok (f : Flow.t) ->
      let st = f.Flow.f_stats in
      {
        a_ok = true;
        a_renders = List.map (fun cmd -> (cmd, Render.output cmd f)) all_cmds;
        a_summary = Flow.summary f;
        a_tier = Flow.tier_to_string f.Flow.f_tier;
        a_notes = List.map Diag.to_string f.Flow.f_notes;
        a_li = f.Flow.f_sched.Hls_core.Scheduler.s_li;
        a_ii = f.Flow.f_cycles_per_iter;
        a_delay_ps = f.Flow.f_delay_ps;
        a_area = f.Flow.f_area.Hls_rtl.Stats.a_total;
        a_power_mw = f.Flow.f_power_mw;
        a_diag = None;
        a_diag_json = None;
        a_code = None;
        a_wall_s = wall_s;
        a_passes = st.Hls_core.Scheduler.st_passes;
        a_warm = st.Hls_core.Scheduler.st_warm_passes;
        a_cold = st.Hls_core.Scheduler.st_cold_passes;
        a_queries = st.Hls_core.Scheduler.st_queries;
        a_actions = st.Hls_core.Scheduler.st_actions;
      }
  | Error (d : Diag.t) ->
      {
        a_ok = false;
        a_renders = [];
        a_summary = "";
        a_tier = "";
        a_notes = [];
        a_li = 0;
        a_ii = 0;
        a_delay_ps = 0.0;
        a_area = 0.0;
        a_power_mw = 0.0;
        a_diag = Some (Diag.to_string d);
        a_diag_json = Some (Diag.to_json d);
        a_code = Some d.Diag.d_code;
        a_wall_s = wall_s;
        a_passes = 0;
        a_warm = 0;
        a_cold = 0;
        a_queries = 0;
        a_actions = 0;
      }

let render a cmd = match List.assoc_opt cmd a.a_renders with Some s -> s | None -> ""

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let opt_str = function Some s -> P.String s | None -> P.Null

let to_json a =
  P.Obj
    [
      ("ok", P.Bool a.a_ok);
      ( "renders",
        P.Obj (List.map (fun (cmd, s) -> (P.cmd_to_string cmd, P.String s)) a.a_renders) );
      ("summary", P.String a.a_summary);
      ("tier", P.String a.a_tier);
      ("notes", P.List (List.map (fun n -> P.String n) a.a_notes));
      ("li", P.Int a.a_li);
      ("ii", P.Int a.a_ii);
      ("delay_ps", P.Float a.a_delay_ps);
      ("area", P.Float a.a_area);
      ("power_mw", P.Float a.a_power_mw);
      ("diag", opt_str a.a_diag);
      ("diag_json", opt_str a.a_diag_json);
      ("code", opt_str a.a_code);
      ("wall_s", P.Float a.a_wall_s);
      ("passes", P.Int a.a_passes);
      ("warm", P.Int a.a_warm);
      ("cold", P.Int a.a_cold);
      ("queries", P.Int a.a_queries);
      ("actions", P.Int a.a_actions);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (P.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "artifact: missing or mistyped field %S" name)
  in
  let opt_field name =
    match P.member name json with
    | Some P.Null | None -> Ok None
    | Some (P.String s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "artifact: mistyped field %S" name)
  in
  let* a_ok = field "ok" P.get_bool in
  let* a_renders =
    match P.member "renders" json with
    | Some (P.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match (P.cmd_of_string k, P.get_string v) with
            | Some cmd, Some s -> Ok ((cmd, s) :: acc)
            | _ -> Error (Printf.sprintf "artifact: bad render entry %S" k))
          (Ok []) kvs
        |> Result.map List.rev
    | _ -> Error "artifact: missing renders object"
  in
  let* a_summary = field "summary" P.get_string in
  let* a_tier = field "tier" P.get_string in
  let* a_notes =
    match P.member "notes" json with
    | Some (P.List items) ->
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            match P.get_string n with
            | Some s -> Ok (s :: acc)
            | None -> Error "artifact: non-string note")
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "artifact: missing notes list"
  in
  let* a_li = field "li" P.get_int in
  let* a_ii = field "ii" P.get_int in
  let* a_delay_ps = field "delay_ps" P.get_float in
  let* a_area = field "area" P.get_float in
  let* a_power_mw = field "power_mw" P.get_float in
  let* a_diag = opt_field "diag" in
  let* a_diag_json = opt_field "diag_json" in
  let* a_code = opt_field "code" in
  let* a_wall_s = field "wall_s" P.get_float in
  let* a_passes = field "passes" P.get_int in
  let* a_warm = field "warm" P.get_int in
  let* a_cold = field "cold" P.get_int in
  let* a_queries = field "queries" P.get_int in
  let* a_actions = field "actions" P.get_int in
  Ok
    {
      a_ok;
      a_renders;
      a_summary;
      a_tier;
      a_notes;
      a_li;
      a_ii;
      a_delay_ps;
      a_area;
      a_power_mw;
      a_diag;
      a_diag_json;
      a_code;
      a_wall_s;
      a_passes;
      a_warm;
      a_cold;
      a_queries;
      a_actions;
    }

let to_store a = P.to_string (to_json a)

let of_store text =
  match P.of_string text with Error m -> Error ("artifact: " ^ m) | Ok json -> of_json json

(* ------------------------------------------------------------------ *)
(* Job-spec derivations *)

let options_of_spec (js : P.job_spec) =
  {
    Flow.default_options with
    Flow.ii = js.P.js_ii;
    clock_ps = js.P.js_clock_ps;
    min_latency = js.P.js_min_latency;
    max_latency = js.P.js_max_latency;
    verify = js.P.js_verify;
    sched =
      {
        Hls_core.Scheduler.default_options with
        max_passes =
          Option.value js.P.js_max_passes
            ~default:Hls_core.Scheduler.default_options.Hls_core.Scheduler.max_passes;
        timeout_s = js.P.js_timeout_s;
      };
  }

let point_of_spec (js : P.job_spec) =
  Dse.point ?ii:js.P.js_ii ?min_latency:js.P.js_min_latency ?max_latency:js.P.js_max_latency
    ~clock_ps:js.P.js_clock_ps ()

let key_of_spec ~design (js : P.job_spec) =
  let options = options_of_spec js in
  let base = Dse.base_fingerprint ~options design in
  let pt = point_of_spec js in
  base ^ "/" ^ Digest.to_hex (Digest.string (Marshal.to_string pt []))

(* ------------------------------------------------------------------ *)
(* Client-facing result frame — the exact field set of the single-process
   daemon this tier replaced, so existing clients decode unchanged *)

let result_frame ~job ~cmd ~cached a =
  let base = [ ("type", P.String "result"); ("job", P.Int job) ] in
  if a.a_ok then
    P.Obj
      (base
      @ [
          ("status", P.String "ok");
          ("output", P.String (render a cmd));
          ("summary", P.String a.a_summary);
          ("tier", P.String a.a_tier);
          ("notes", P.List (List.map (fun n -> P.String n) a.a_notes));
          ("cached", P.Bool cached);
          ("wall_s", P.Float a.a_wall_s);
          ("li", P.Int a.a_li);
          ("ii", P.Int a.a_ii);
          ("delay_ps", P.Float a.a_delay_ps);
          ("area", P.Float a.a_area);
          ("power_mw", P.Float a.a_power_mw);
        ])
  else
    P.Obj
      (base
      @ [
          ("status", P.String "error");
          ("diag", P.String (Option.value a.a_diag ~default:""));
          ("diag_json", P.String (Option.value a.a_diag_json ~default:"{}"));
          ("code", P.String (Option.value a.a_code ~default:"unknown"));
          ("cached", P.Bool cached);
          ("wall_s", P.Float a.a_wall_s);
        ])
