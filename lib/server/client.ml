module P = Protocol

type t = {
  fd : Unix.file_descr;
  mutable pending : P.json list;
      (** frames read while waiting for a different frame type, oldest
          first — lets [cancel]/[stats] ride a connection that also has a
          submit in flight without losing frames *)
  mutable alive : bool;
}

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let frame_type j = Option.bind (P.member "type" j) P.get_string

(* read frames until [want] matches one; non-matching frames go through
   [other] (events) or into the pending buffer *)
let next_matching ?(on_event = fun ~level:_ _ -> ()) t want =
  let matches j = match frame_type j with Some ty -> want ty | None -> false in
  let rec from_pending acc = function
    | [] -> None
    | j :: rest when matches j ->
        t.pending <- List.rev_append acc rest;
        Some j
    | j :: rest -> from_pending (j :: acc) rest
  in
  match from_pending [] t.pending with
  | Some j -> Ok j
  | None ->
      let rec go () =
        match P.read_frame t.fd with
        | Error e -> Error (P.frame_error_to_string e)
        | Ok j when matches j -> Ok j
        | Ok j -> (
            match frame_type j with
            | Some "event" ->
                let level =
                  Option.value (Option.bind (P.member "level" j) P.get_string) ~default:"info"
                in
                let text =
                  Option.value (Option.bind (P.member "text" j) P.get_string) ~default:""
                in
                on_event ~level text;
                go ()
            | _ ->
                t.pending <- t.pending @ [ j ];
                go ())
      in
      go ()

let error_of_frame j =
  let code = Option.value (Option.bind (P.member "code" j) P.get_string) ~default:"error" in
  let msg = Option.value (Option.bind (P.member "message" j) P.get_string) ~default:"" in
  Printf.sprintf "%s: %s" code msg

let connect ?tcp ~socket () =
  try
    let fd =
      match tcp with
      | Some (host, port) ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          let addr =
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> Unix.inet_addr_of_string host
          in
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          fd
      | None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
    in
    let t = { fd; pending = []; alive = true } in
    P.write_frame fd (P.request_to_json (P.Hello P.version));
    match next_matching t (fun ty -> ty = "hello" || ty = "error") with
    | Error m ->
        close t;
        Error m
    | Ok j when frame_type j = Some "error" ->
        close t;
        Error (error_of_frame j)
    | Ok j -> (
        match Option.bind (P.member "proto" j) P.get_int with
        | Some v when v = P.version -> Ok t
        | Some v ->
            close t;
            Error
              (Printf.sprintf "daemon speaks protocol %d, this client needs %d — refusing" v
                 P.version)
        | None ->
            close t;
            Error "daemon hello carried no protocol version")
  with
  | Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | Not_found -> Error "host not found"

let submit_nowait t spec =
  try
    P.write_frame t.fd (P.request_to_json (P.Submit spec));
    match next_matching t (fun ty -> ty = "accepted" || ty = "error") with
    | Error m -> Error m
    | Ok j when frame_type j = Some "error" -> Error (error_of_frame j)
    | Ok j -> (
        match Option.bind (P.member "job" j) P.get_int with
        | Some id -> Ok id
        | None -> Error "accepted frame carried no job id")
  with Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let await ?on_event t =
  match next_matching ?on_event t (fun ty -> ty = "result" || ty = "error") with
  | Error m -> Error m
  | Ok j when frame_type j = Some "error" -> Error (error_of_frame j)
  | Ok j -> P.outcome_of_json j

let submit ?on_event t spec =
  match submit_nowait t spec with Error m -> Error m | Ok _ -> await ?on_event t

let cancel t id =
  try
    P.write_frame t.fd (P.request_to_json (P.Cancel id));
    match next_matching t (fun ty -> ty = "cancelling") with
    | Error m -> Error m
    | Ok j -> Ok (Option.value (Option.bind (P.member "found" j) P.get_bool) ~default:false)
  with Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let stats t =
  try
    P.write_frame t.fd (P.request_to_json P.Stats);
    next_matching t (fun ty -> ty = "stats")
  with Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let shutdown_server t =
  try
    P.write_frame t.fd (P.request_to_json P.Shutdown);
    match next_matching t (fun ty -> ty = "draining") with
    | Error m -> Error m
    | Ok _ -> Ok ()
  with Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let health t =
  try
    P.write_frame t.fd (P.request_to_json P.Health);
    match next_matching t (fun ty -> ty = "health" || ty = "error") with
    | Error m -> Error m
    | Ok j when frame_type j = Some "error" -> Error (error_of_frame j)
    | Ok j -> Ok j
  with Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* Retrying submit *)

(* [Error] strings from this module are ["<code>: <message>"] for daemon
   error frames and ["<syscall>: <reason>"] / ["connection closed"] for
   transport faults.  Retryable: transient daemon rejects and transport
   faults.  NOT retryable: the daemon is healthy and said no ([draining],
   [proto_mismatch], [bad_*]) — retrying cannot change its answer. *)
let retryable_error msg =
  let has_prefix p =
    String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
  in
  has_prefix "overloaded:" || has_prefix "queue_full:" || has_prefix "worker_lost:"
  || msg = "connection closed"
  || has_prefix "connect:" || has_prefix "read:" || has_prefix "write:"
  || has_prefix "recv:" || has_prefix "send:"

(* a service-tier loss comes back as a [result] frame with this code —
   idempotent by fingerprint, so re-submitting is always safe *)
let retryable_outcome (o : P.outcome) =
  o.P.o_status = P.S_error && o.P.o_code = Some "worker_lost"

let submit_retrying ?on_event ?(retries = 3) ?(backoff_s = 0.05) ?(max_backoff_s = 2.0) ?seed
    ~connect spec =
  let rng = Random.State.make (match seed with Some s -> [| s |] | None -> [| 0x5eed |]) in
  let jittered d = d *. (0.5 +. Random.State.float rng 1.0) in
  let rec attempt n delay =
    let verdict =
      match connect () with
      | Error m -> Error m
      | Ok conn ->
          let r = submit ?on_event conn spec in
          close conn;
          r
    in
    match verdict with
    | Ok o when retryable_outcome o && n < retries ->
        Unix.sleepf (jittered delay);
        attempt (n + 1) (Float.min max_backoff_s (delay *. 2.0))
    | Ok o -> Ok (o, n + 1)
    | Error m when retryable_error m && n < retries ->
        Unix.sleepf (jittered delay);
        attempt (n + 1) (Float.min max_backoff_s (delay *. 2.0))
    | Error m -> Error m
  in
  attempt 0 backoff_s

(* ------------------------------------------------------------------ *)
(* Load generator *)

type bench_result = {
  b_clients : int;
  b_requests : int;
  b_cold_wall_s : float;
  b_warm_wall_s : float;
  b_cold_p50_ms : float;
  b_cold_p95_ms : float;
  b_warm_p50_ms : float;
  b_warm_p95_ms : float;
  b_cold_throughput : float;
  b_warm_throughput : float;
  b_cache_hit_rate : float;
  b_speedup : float;
  b_errors : int;
}

let percentile p xs =
  match Array.length xs with
  | 0 -> 0.0
  | n ->
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      let idx = min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1) in
      sorted.(max 0 idx)

let bench ~socket ~clients ~requests ~design ~cmd () =
  (* each (client, request) pair gets its own clock so the cold phase is
     [clients * requests] genuinely distinct compiles; the warm phase
     repeats the exact same specs, so it is pure cache service *)
  let spec_of i j =
    P.job_spec ~verify:false ~clock_ps:(1600.0 +. float_of_int ((i * requests) + j)) cmd
      (`Builtin design)
  in
  let n = clients * requests in
  let lat_cold = Array.make n 0.0 in
  let lat_warm = Array.make n 0.0 in
  let cached = Array.make (2 * n) false in
  let errors = Atomic.make 0 in
  let barrier_m = Mutex.create () in
  let barrier_c = Condition.create () in
  let phase_left = ref clients in
  let phase_go = ref 0 in
  (* classic two-phase barrier: last thread in flips the generation *)
  let barrier () =
    Mutex.lock barrier_m;
    let gen = !phase_go in
    decr phase_left;
    if !phase_left = 0 then begin
      phase_left := clients;
      incr phase_go;
      Condition.broadcast barrier_c
    end
    else while !phase_go = gen do Condition.wait barrier_c barrier_m done;
    Mutex.unlock barrier_m
  in
  let t_cold_start = ref 0.0 and t_cold_end = ref 0.0 in
  let t_warm_start = ref 0.0 and t_warm_end = ref 0.0 in
  let worker i =
    match connect ~socket () with
    | Error _ ->
        Atomic.incr errors;
        barrier ();
        barrier ();
        barrier ()
    | Ok conn ->
        let one phase j =
          let t0 = Unix.gettimeofday () in
          (match submit conn (spec_of i j) with
          | Ok o ->
              let slot = (i * requests) + j in
              cached.((phase * n) + slot) <- o.P.o_cached;
              if o.P.o_status <> P.S_ok then Atomic.incr errors
          | Error _ -> Atomic.incr errors);
          Unix.gettimeofday () -. t0
        in
        (* cold phase *)
        if i = 0 then t_cold_start := Unix.gettimeofday ();
        barrier ();
        for j = 0 to requests - 1 do
          lat_cold.((i * requests) + j) <- one 0 j
        done;
        barrier ();
        if i = 0 then begin
          t_cold_end := Unix.gettimeofday ();
          t_warm_start := !t_cold_end
        end;
        (* warm phase: identical specs, so every request is a cache hit *)
        barrier ();
        for j = 0 to requests - 1 do
          lat_warm.((i * requests) + j) <- one 1 j
        done;
        if i = 0 then t_warm_end := Unix.gettimeofday ();
        close conn
  in
  if clients < 1 || requests < 1 then Error "bench needs at least one client and one request"
  else begin
    let t0 = Unix.gettimeofday () in
    t_cold_start := t0;
    let threads = List.init clients (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    if !t_warm_end = 0.0 then t_warm_end := Unix.gettimeofday ();
    let cold_wall = max 1e-9 (!t_cold_end -. !t_cold_start) in
    let warm_wall = max 1e-9 (!t_warm_end -. !t_warm_start) in
    let cold_p50 = percentile 50.0 lat_cold *. 1000.0 in
    let warm_p50 = percentile 50.0 lat_warm *. 1000.0 in
    let hits = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 cached in
    Ok
      {
        b_clients = clients;
        b_requests = requests;
        b_cold_wall_s = cold_wall;
        b_warm_wall_s = warm_wall;
        b_cold_p50_ms = cold_p50;
        b_cold_p95_ms = percentile 95.0 lat_cold *. 1000.0;
        b_warm_p50_ms = warm_p50;
        b_warm_p95_ms = percentile 95.0 lat_warm *. 1000.0;
        b_cold_throughput = float_of_int n /. cold_wall;
        b_warm_throughput = float_of_int n /. warm_wall;
        b_cache_hit_rate = float_of_int hits /. float_of_int (2 * n);
        b_speedup = (if warm_p50 > 0.0 then cold_p50 /. warm_p50 else 0.0);
        b_errors = Atomic.get errors;
      }
  end

let bench_to_json b =
  Printf.sprintf
    {|{"clients":%d,"requests_per_client_per_phase":%d,"cold_wall_s":%.6f,"warm_wall_s":%.6f,"cold_p50_ms":%.3f,"cold_p95_ms":%.3f,"warm_p50_ms":%.3f,"warm_p95_ms":%.3f,"cold_throughput_rps":%.2f,"warm_throughput_rps":%.2f,"cache_hit_rate":%.4f,"warm_speedup":%.2f,"errors":%d}|}
    b.b_clients b.b_requests b.b_cold_wall_s b.b_warm_wall_s b.b_cold_p50_ms b.b_cold_p95_ms
    b.b_warm_p50_ms b.b_warm_p95_ms b.b_cold_throughput b.b_warm_throughput b.b_cache_hit_rate
    b.b_speedup b.b_errors
