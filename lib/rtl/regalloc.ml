(** Register allocation for values crossing control-step boundaries.

    Every scheduled value that is consumed in a later step (or carried to
    the next loop iteration, or written to an output port) needs storage.
    Two refinements mirror what the paper's area numbers imply:

    - {b pipelining copies}: in a folded pipeline a value produced at step
      [s] and consumed at step [u] must survive [u - s] cycles while a new
      instance is produced every II cycles, so it occupies
      [ceil((u - s) / II)] register copies (a shift chain);
    - {b register sharing}: in sequential schedules, values with disjoint
      life spans share a register (which is why shared registers carry the
      input mux of Fig. 8); loop-carried and cross-region values keep
      dedicated registers.

    Sharing is greedy interval allocation per width class. *)

open Hls_ir
open Hls_core
module Netlist = Hls_netlist.Netlist

type value_info = {
  v_op : int;
  v_width : int;
  v_def : int;  (** producing step (finish step for multi-cycle ops) *)
  v_last_use : int;  (** last consuming step within the region *)
  v_copies : int;  (** pipeline shift-chain length *)
  v_dedicated : bool;  (** loop-carried / cross-region: not shareable *)
}

type reg = { r_width : int; r_values : value_info list; r_copies : int }

type t = { values : value_info list; regs : reg list }

let analyze (s : Scheduler.t) : t =
  let nl = s.Scheduler.s_binding.Binding.net in
  let region = s.Scheduler.s_region in
  let dfg = region.Region.dfg in
  let ii = Region.ii region in
  let li = s.Scheduler.s_li in
  let values =
    List.filter_map
      (fun id ->
        let op = Dfg.find dfg id in
        match Netlist.placement nl id with
        | None -> None
        | Some pl ->
            let def = pl.Netlist.pl_finish in
            let dedicated = ref false in
            let last_use = ref def in
            List.iter
              (fun e ->
                if e.Dfg.distance > 0 then begin
                  dedicated := true;
                  last_use := max !last_use (li - 1)
                end
                else if not (Region.mem region e.Dfg.dst) then begin
                  dedicated := true;
                  last_use := max !last_use (li - 1)
                end
                else
                  match Netlist.placement nl e.Dfg.dst with
                  | Some cpl -> last_use := max !last_use cpl.Netlist.pl_step
                  | None -> ())
              (Dfg.out_edges dfg id);
            let is_write = match op.Dfg.kind with Opkind.Write _ -> true | _ -> false in
            if (not is_write) && !last_use <= def && not !dedicated then None
            else
              let span = max 0 (!last_use - def) in
              let copies = if Region.is_pipelined region then max 1 ((span + ii - 1) / ii) else 1 in
              Some
                {
                  v_op = id;
                  v_width = op.Dfg.width;
                  v_def = def;
                  v_last_use = !last_use;
                  v_copies = copies;
                  v_dedicated = !dedicated || is_write || Region.is_pipelined region;
                })
      (Netlist.registered_ops nl)
  in
  (* greedy interval sharing for non-dedicated values *)
  let shareable = List.filter (fun v -> not v.v_dedicated) values in
  let dedicated = List.filter (fun v -> v.v_dedicated) values in
  let sorted = List.sort (fun a b -> compare (a.v_width, a.v_def) (b.v_width, b.v_def)) shareable in
  let pools : reg list ref = ref [] in
  List.iter
    (fun v ->
      let fits r =
        r.r_width = v.v_width
        && List.for_all (fun u -> u.v_last_use < v.v_def || v.v_last_use < u.v_def) r.r_values
      in
      match List.find_opt fits !pools with
      | Some r ->
          pools :=
            { r with r_values = v :: r.r_values } :: List.filter (fun r' -> r' != r) !pools
      | None -> pools := { r_width = v.v_width; r_values = [ v ]; r_copies = 1 } :: !pools)
    sorted;
  let dedicated_regs =
    List.map (fun v -> { r_width = v.v_width; r_values = [ v ]; r_copies = v.v_copies }) dedicated
  in
  { values; regs = !pools @ dedicated_regs }

let n_registers t = List.fold_left (fun acc r -> acc + r.r_copies) 0 t.regs

let register_bits t = List.fold_left (fun acc r -> acc + (r.r_copies * r.r_width)) 0 t.regs

(** Registers written by more than one value need an input sharing mux. *)
let shared_regs t = List.filter (fun r -> List.length r.r_values > 1) t.regs
