(** Area roll-up of a scheduled design: resources (post-synthesis sized),
    sharing muxes, registers, register muxes and control.

    This is the figure the paper's Table 3 and Figures 10/11 report.  The
    resource component defaults to nominal library areas; when the schedule
    carries negative slack (the Table 4 ablation), the
    {!Hls_timing.Synthesize} sizing result substitutes upsized areas. *)

open Hls_ir
open Hls_techlib
open Hls_core
module Netlist = Hls_netlist.Netlist

type breakdown = {
  a_resources : float;
  a_input_muxes : float;
  a_registers : float;
  a_reg_muxes : float;
  a_control : float;
  a_total : float;
  n_registers : int;
  n_instances : int;
  wns : float;  (** worst negative slack after sizing (0 = timing met) *)
}

(** Compute the breakdown.  [synth] supplies post-sizing resource areas
    (from {!Hls_timing.Synthesize.run} on the schedule's timing report);
    when omitted, the accurate timing report is synthesized internally.
    [io_widths] lists the design's port widths — each port carries an I/O
    register. *)
let area ?(synth : Hls_timing.Synthesize.result option) ?(io_widths : int list = [])
    (s : Scheduler.t) : breakdown =
  let net = s.Scheduler.s_binding.Binding.net in
  let lib = Netlist.lib net in
  let region = s.Scheduler.s_region in
  let synth =
    match synth with
    | Some r -> r
    | None -> Hls_timing.Synthesize.run lib (Netlist.timing_report net)
  in
  let used_insts = List.filter (fun i -> i.Netlist.bound <> []) (Netlist.insts net) in
  let sized_area inst =
    match
      List.find_opt (fun (i, _, _, _) -> i = inst.Netlist.inst_id) synth.Hls_timing.Synthesize.s_per_inst
    with
    | Some (_, _, _, a) -> a
    | None -> Library.area lib inst.Netlist.rtype
  in
  let a_resources = List.fold_left (fun acc i -> acc +. sized_area i) 0.0 used_insts in
  let a_input_muxes =
    List.fold_left
      (fun acc inst ->
        let ports = List.length inst.Netlist.rtype.Resource.in_widths in
        let per_port p =
          let k = Netlist.mux_inputs net inst ~port:p in
          let w = List.nth inst.Netlist.rtype.Resource.in_widths p in
          Library.mux_area lib ~inputs:k ~width:w
        in
        acc +. List.fold_left (fun a p -> a +. per_port p) 0.0 (List.init ports Fun.id))
      0.0 used_insts
  in
  let ra = Regalloc.analyze s in
  let a_registers =
    List.fold_left
      (fun acc r -> acc +. (float_of_int r.Regalloc.r_copies *. Library.reg_area lib ~width:r.Regalloc.r_width))
      0.0 ra.Regalloc.regs
  in
  let a_reg_muxes =
    List.fold_left
      (fun acc r ->
        acc +. Library.mux_area lib ~inputs:(List.length r.Regalloc.r_values) ~width:r.Regalloc.r_width)
      0.0 (Regalloc.shared_regs ra)
  in
  let kernel_states = Region.ii region in
  let stages = Region.n_stages region in
  let a_control =
    lib.Library.control_area_base
    +. (lib.Library.control_area_per_state *. float_of_int kernel_states)
    +. (if Region.is_pipelined region then
          (* stage-valid registers and per-stage gating *)
          float_of_int stages *. (lib.Library.a_ff_per_bit +. (0.35 *. lib.Library.control_area_per_state))
        else 0.0)
  in
  let a_io = List.fold_left (fun acc w -> acc +. Library.reg_area lib ~width:w) 0.0 io_widths in
  let a_control = a_control +. a_io in
  {
    a_resources;
    a_input_muxes;
    a_registers;
    a_reg_muxes;
    a_control;
    a_total = a_resources +. a_input_muxes +. a_registers +. a_reg_muxes +. a_control;
    n_registers = Regalloc.n_registers ra;
    n_instances = List.length used_insts;
    wns = synth.Hls_timing.Synthesize.s_wns;
  }

(** Activity-aware power estimate in mW.

    Dynamic power: each op execution activates its resource (switching
    energy proportional to sized area); each register copy toggles once per
    initiation interval; the controller toggles every cycle.  Executions
    per iteration come from the simulator's activity counts (falling back
    to 1.0 per op).  Static power: leakage proportional to total area.

    [clock_ps] is the operating clock; one loop iteration completes every
    [II * clock_ps]. *)
let power ?(activity : (int, int) Hashtbl.t option) ?(iters = 1) (s : Scheduler.t)
    (bd : breakdown) ~clock_ps : float =
  let net = s.Scheduler.s_binding.Binding.net in
  let lib = Netlist.lib net in
  let region = s.Scheduler.s_region in
  let dfg = region.Region.dfg in
  let ii = Region.ii region in
  let execs_per_iter op_id =
    match activity with
    | Some tbl ->
        float_of_int (Option.value (Hashtbl.find_opt tbl op_id) ~default:0)
        /. float_of_int (max 1 iters)
    | None -> 1.0
  in
  let op_energy =
    Netlist.fold_placements net
      (fun op_id _pl acc ->
        let op = Dfg.find dfg op_id in
        match Resource.of_op dfg op with
        | Some rt when Opkind.is_resource_op op.Dfg.kind ->
            acc +. (Library.energy lib rt *. execs_per_iter op_id)
        | _ -> acc)
      0.0
  in
  let ra = Regalloc.analyze s in
  let reg_energy =
    List.fold_left
      (fun acc r ->
        acc +. (float_of_int r.Regalloc.r_copies *. Library.reg_energy lib ~width:r.Regalloc.r_width))
      0.0 ra.Regalloc.regs
  in
  let control_energy = 0.002 *. bd.a_control *. float_of_int ii in
  let energy_per_iter_pj = op_energy +. reg_energy +. control_energy in
  (* pJ / ps = W; convert to mW *)
  let dynamic_mw = energy_per_iter_pj /. (float_of_int ii *. clock_ps) *. 1000.0 in
  let leakage_mw = Library.leakage_mw lib ~total_area:bd.a_total in
  dynamic_mw +. leakage_mw

let pp_breakdown fmt b =
  Format.fprintf fmt
    "area %.0f (resources %.0f, input muxes %.0f, registers %.0f, reg muxes %.0f, control %.0f; \
     %d regs, %d instances%s)"
    b.a_total b.a_resources b.a_input_muxes b.a_registers b.a_reg_muxes b.a_control b.n_registers
    b.n_instances
    (if b.wns < -0.5 then Printf.sprintf ", WNS %.0f ps" b.wns else "")
