(** Parallel design-space exploration engine (Section VI).

    The paper's evaluation sweeps micro-architectural parameters — II,
    latency bounds, clock period — over one design and reports the
    area/performance Pareto front (Figures 9–11).  This engine takes a
    design plus a parameter {!grid}, runs every point through
    {!Hls_flow.Flow.run} on a pool of OCaml 5 domains, and returns
    per-point results with profiling (wall time, scheduler passes, expert
    actions, and the binder's timing-query count — the paper's "hottest
    query of the timing engine").

    Results are memoized in the engine across sweeps, keyed by a stable
    fingerprint of (design digest, effective flow options): repeated or
    overlapping sweeps never re-schedule the same point, and duplicate
    points within one sweep are scheduled once.

    Determinism: a sweep's results depend only on the design, the base
    options and the point list — never on the worker count — so
    [~jobs:n] produces identical point results to [~jobs:1]. *)

(** {2 Grid} *)

(** An initiation-interval request: sequential, one flat II, or a
    per-dimension vector for a loop nest (outermost first — [Dims [4; 1]]
    initiates the outer loop every 4 cycles and the inner every cycle). *)
type ii_spec = Seq | Flat of int | Dims of int list

val ii_label : ii_spec -> string
(** ["seq"], ["ii=2"] or ["ii=4x1"]. *)

(** One micro-architectural configuration: the fields of
    {!Hls_flow.Flow.options} the evaluation sweeps. *)
type point = {
  pt_ii : ii_spec;
  pt_min_latency : int option;
  pt_max_latency : int option;
  pt_clock_ps : float;
}

val point :
  ?ii:int ->
  ?ii_dims:int list ->
  ?min_latency:int ->
  ?max_latency:int ->
  clock_ps:float ->
  unit ->
  point
(** [?ii_dims] wins over [?ii]; with neither the point is sequential. *)

val point_label : point -> string
(** Compact human label, e.g. ["ii=2 lat=8..8 clk=1200"] or
    ["ii=4x1 lat=auto clk=1600"]. *)

(** A cartesian parameter grid: II specs × latency-bound pairs × clock
    periods. *)
type grid = {
  g_iis : ii_spec list;
  g_latencies : (int option * int option) list;
  g_clocks : float list;
}

val grid :
  ?iis:ii_spec list ->
  ?latencies:(int option * int option) list ->
  ?clocks:float list ->
  unit ->
  grid
(** Defaults: sequential only, designer latency bounds, 1600 ps. *)

val grid_points : grid -> point list
(** The cartesian product in a deterministic order (iis outermost, clocks
    innermost). *)

val parse_grid : string -> (grid, string) result
(** Parse the [--grid] specification language:
    ["ii=none,1,2;latency=8..8,16;clock=1200,1600"] — semicolon-separated
    dimensions, comma-separated values; [none] for sequential / designer
    bounds, a bare latency [n] meaning [n..n].  An II value of the form
    [AxB] (e.g. [4x1]) requests per-dimension IIs for a loop nest,
    outermost first; each dimension must be a positive integer. *)

(** {2 Results} *)

(** Per-point profiling record. *)
type profile = {
  pr_wall_s : float;  (** wall-clock seconds inside [Flow.run] *)
  pr_passes : int;  (** scheduler relaxation passes *)
  pr_actions : int;  (** expert actions applied *)
  pr_queries : int;  (** binder netlist timing queries *)
  pr_warm_passes : int;  (** passes served by warm-start prefix replay *)
  pr_cold_passes : int;  (** passes re-vetted from a cold restart *)
  pr_hints : int;  (** feedback hints the scheduler applied at start *)
  pr_cached : bool;  (** served from the memo cache, not a fresh run *)
}

type result = {
  r_point : point;
  r_flow : (Hls_flow.Flow.t, Hls_diag.Diag.t) Stdlib.result;
  r_profile : profile;
}

(** One sweep's outcome: results in input-point order plus sweep-level
    accounting. *)
type sweep = {
  sw_results : result list;
  sw_wall_s : float;  (** wall-clock of the whole sweep *)
  sw_jobs : int;  (** effective worker-pool size used *)
  sw_new_runs : int;  (** points actually run (not cache-served) *)
  sw_cache_hits : int;
  sw_hint_reuse : int;
      (** fresh runs warm-started from the cross-point hint store (always
          0 unless [options.feedback] is on) *)
  sw_hints_extracted : int;
      (** distinct new hints this sweep mined into the store *)
}

(** {2 Worker pool} *)

(** A persistent task-queue pool of OCaml 5 domains with an explicit
    lifecycle.  The DSE engine schedules its sweeps on one, and the
    compile-service daemon ([hlsc serve]) runs its job queue on one.
    Domains park on a condition variable while the queue is empty and are
    all joined by {!Pool.shutdown} — nothing is ever left parked forever. *)
module Pool : sig
  type t

  val create : ?workers:int -> unit -> t
  (** Spawn a pool of [workers] (≥ 1, default 1) resident domains. *)

  val ensure : t -> int -> unit
  (** Grow the pool to at least this many domains (never shrinks; no-op
      after {!shutdown}). *)

  val size : t -> int
  (** Resident domain count (0 after {!shutdown}). *)

  val alive : t -> bool
  (** [false] once {!shutdown} has begun; {!submit} then refuses work. *)

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a task; returns [false] (task dropped) after {!shutdown}.
      A task that raises is swallowed — wrap tasks that must report. *)

  val wait : t -> unit
  (** Block until the queue is empty and no task is executing. *)

  val shutdown : t -> unit
  (** Graceful drain: stop admitting, run every already-queued task,
      then join all domains.  Idempotent via an atomic latch: exactly
      one caller (the first) drains and joins; every other call — a
      server drain racing an [at_exit] hook, a repeat from a signal
      handler body — returns immediately without touching the mutex,
      so no domain is ever joined twice. *)
end

(** {2 Engine} *)

type t
(** An exploration engine: a memo cache shared by every sweep run on it. *)

val create : unit -> t

val runs_performed : t -> int
(** Total [Flow.run] invocations over the engine's lifetime (cache misses
    only) — the observable for cache-hit tests. *)

val fingerprint : options:Hls_flow.Flow.options -> Hls_frontend.Ast.design -> point -> string
(** A stable per-point digest of the design and the effective flow options
    — the fully-collapsed form of the engine's two-level cache key, kept
    for external tooling that wants one string per run. *)

val base_fingerprint : options:Hls_flow.Flow.options -> Hls_frontend.Ast.design -> string
(** The per-sweep half of the memo key: a digest of the design and the
    point-neutralized options.  [sweep] computes this once and keys the
    cache on [(base, point)], sparing one marshal+digest per point. *)

val hint_store_key : options:Hls_flow.Flow.options -> Hls_frontend.Ast.design -> string
(** The cross-point hint store's key: the base fingerprint additionally
    neutralized in the feedback fields themselves, so a design's seed run
    and its warm-started runs share one store entry. *)

val shutdown : t -> unit
(** Join the engine's resident worker domains (no-op when none were ever
    spawned).  Also registered with [at_exit]; safe to call more than
    once — a later sweep simply spawns a fresh pool. *)

val validate_jobs : int -> (int, Hls_diag.Diag.t) Stdlib.result
(** Reject non-positive worker counts with a typed [Explore]-phase
    diagnostic (code ["bad_jobs"]); the valid count passes through
    unchanged.  [sweep] itself silently clamps, so drivers call this
    first to surface user errors instead of masking them. *)

val sweep :
  ?jobs:int ->
  ?max_workers:int ->
  t ->
  options:Hls_flow.Flow.options ->
  Hls_frontend.Ast.design ->
  point list ->
  sweep
(** Run every point through the flow on a pool of [jobs] workers (the
    calling domain plus [jobs - 1] resident domains, spawned on first use
    and reused by every later sweep on this engine).  [jobs] is capped at
    [max_workers], which defaults to [Domain.recommended_domain_count ()];
    pass it explicitly to allow deliberate oversubscription (e.g.
    exercising the pool on a small machine).  Pool size 1 runs
    sequentially on the calling domain.  Results come back in input order
    regardless of [jobs].

    With [options.feedback] on, the sweep threads the engine's shared
    hint store through the points: if the store has nothing for this
    design, the first point runs alone (sequentially) to seed it, then
    every remaining point warm-starts from that one frozen snapshot of
    portable hints — never from a concurrently-finishing neighbor — so
    point results stay identical for every [jobs] count.  All fresh
    results are mined back into the store after the batch.  Warm-started
    points carry different effective options than the seed (the hints),
    and are cached under their own key. *)

(** {2 Reporting} *)

(** Sweep-level summary for [Dse.stats]. *)
type stats = {
  s_points : int;
  s_ok : int;
  s_failed : int;
  s_cache_hits : int;
  s_new_runs : int;
  s_jobs : int;
  s_wall_s : float;
  s_points_per_s : float;
  s_cpu_s : float;  (** sum of per-point wall over fresh runs *)
  s_passes : int;
  s_actions : int;
  s_queries : int;
  s_warm_passes : int;  (** sum of warm-started passes over fresh runs *)
  s_cold_passes : int;  (** sum of cold passes over fresh runs *)
  s_hints : int;  (** sum of feedback hints applied across points *)
  s_hint_reuse : int;  (** fresh runs warm-started from the hint store *)
  s_hints_extracted : int;  (** distinct new hints mined this sweep *)
}

val stats : sweep -> stats
val stats_to_string : stats -> string
val stats_to_json : stats -> string

val table : result list -> string list list
(** Rows for {!Hls_report.Table}: config, tier, II, LI, delay, area,
    power, passes, queries, wall, cache flag. *)

val pareto_points : result list -> result Hls_report.Pareto.point list
(** Delay (II × Tclk) vs area points of the successful results, tagged
    with their result — feed to {!Hls_report.Pareto.front}. *)

val sweep_to_json : sweep -> string
(** Machine-readable dump of a sweep: per-point configuration, outcome,
    metrics and profile, plus the {!stats} summary. *)
