(** Parallel design-space exploration engine.  See the interface for the
    contract; the implementation notes here cover the two load-bearing
    choices.

    {b Parallelism.}  Every grid point is an independent [Flow.run]
    (elaboration is always fresh, and the flow touches no global mutable
    state), so the sweep is an embarrassingly-parallel map.  Workers are
    OCaml 5 domains pulling point indices from an atomic counter; results
    land in per-index slots, so the output order — and therefore the
    result list — is independent of the worker count and of scheduling
    interleavings.  [Domain.join] publishes the slot writes to the
    spawning domain.

    {b Memoization.}  The cache key is two-level: one digest of the
    marshalled (design, point-neutralized options) pair per {e sweep} (the
    base fingerprint — both are pure data, so the digest is a stable
    description of everything outside the grid), paired with the point
    itself under structural equality.  A sweep therefore marshals the
    design once, not once per point.  The cache is read and written only
    by the spawning domain (workers see a pre-deduplicated work list),
    which keeps the memoization lock-free.

    {b Worker pool.}  Domains are expensive to spawn relative to a small
    point's flow run, so the engine keeps its workers alive across sweeps:
    the first multi-worker sweep spawns them, later sweeps hand the pool a
    fresh job (an atomic work-stealing counter over the todo array) under
    a mutex/condition pair, and {!shutdown} — also registered with
    [at_exit] — joins them. *)

module Flow = Hls_flow.Flow
module Diag = Hls_diag.Diag
module Feedback = Hls_feedback.Feedback

(* ------------------------------------------------------------------ *)
(* Grid *)

(** An initiation-interval request: sequential, one flat II, or a
    per-dimension vector for a loop nest (outermost first, e.g.
    [Dims [4; 1]] = outer initiation every 4 cycles, inner every 1). *)
type ii_spec = Seq | Flat of int | Dims of int list

let ii_label = function
  | Seq -> "seq"
  | Flat ii -> Printf.sprintf "ii=%d" ii
  | Dims ds -> Printf.sprintf "ii=%s" (String.concat "x" (List.map string_of_int ds))

type point = {
  pt_ii : ii_spec;
  pt_min_latency : int option;
  pt_max_latency : int option;
  pt_clock_ps : float;
}

let point ?ii ?ii_dims ?min_latency ?max_latency ~clock_ps () =
  let pt_ii =
    match (ii_dims, ii) with
    | Some ds, _ -> Dims ds
    | None, Some ii -> Flat ii
    | None, None -> Seq
  in
  { pt_ii; pt_min_latency = min_latency; pt_max_latency = max_latency; pt_clock_ps = clock_ps }

let point_label p =
  let lat =
    match (p.pt_min_latency, p.pt_max_latency) with
    | None, None -> "auto"
    | lo, hi ->
        let s = function None -> "_" | Some v -> string_of_int v in
        s lo ^ ".." ^ s hi
  in
  Printf.sprintf "%s lat=%s clk=%.0f" (ii_label p.pt_ii) lat p.pt_clock_ps

type grid = {
  g_iis : ii_spec list;
  g_latencies : (int option * int option) list;
  g_clocks : float list;
}

let grid ?(iis = [ Seq ]) ?(latencies = [ (None, None) ]) ?(clocks = [ 1600.0 ]) () =
  { g_iis = iis; g_latencies = latencies; g_clocks = clocks }

let grid_points g =
  List.concat_map
    (fun ii ->
      List.concat_map
        (fun (lo, hi) ->
          List.map
            (fun clk ->
              { pt_ii = ii; pt_min_latency = lo; pt_max_latency = hi; pt_clock_ps = clk })
            g.g_clocks)
        g.g_latencies)
    g.g_iis

let split_on_string ~sep s =
  (* only single-char separators needed *)
  String.split_on_char sep s |> List.map String.trim |> List.filter (fun x -> x <> "")

let parse_grid spec =
  let ( let* ) r f = match r with Error e -> Error e | Ok x -> f x in
  let parse_int what s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | _ -> Error (Printf.sprintf "bad %s value '%s' (expected a positive integer)" what s)
  in
  let parse_ii s =
    if s = "none" then Ok Seq
    else
      match String.index_opt s 'x' with
      | None -> Result.map (fun ii -> Flat ii) (parse_int "ii" s)
      | Some _ -> (
          let parts = String.split_on_char 'x' s |> List.map String.trim in
          if List.exists (fun p -> p = "") parts || List.length parts < 2 then
            Error (Printf.sprintf "bad ii value '%s' (expected N or AxB per-dimension spec)" s)
          else
            let rec all = function
              | [] -> Ok []
              | p :: ps -> (
                  match int_of_string_opt p with
                  | Some v when v >= 1 -> (
                      match all ps with Ok vs -> Ok (v :: vs) | Error e -> Error e)
                  | _ ->
                      Error
                        (Printf.sprintf "bad ii value '%s' (each dimension must be a positive integer)" s))
            in
            match all parts with Ok ds -> Ok (Dims ds) | Error e -> Error e)
  in
  let parse_latency s =
    if s = "none" then Ok (None, None)
    else
      match String.index_opt s '.' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '.' ->
          let* lo = parse_int "latency" (String.sub s 0 i) in
          let* hi = parse_int "latency" (String.sub s (i + 2) (String.length s - i - 2)) in
          if lo > hi then Error (Printf.sprintf "empty latency range '%s'" s)
          else Ok (Some lo, Some hi)
      | _ ->
          let* n = parse_int "latency" s in
          Ok (Some n, Some n)
  in
  let parse_clock s =
    match float_of_string_opt s with
    | Some v when v > 0.0 -> Ok v
    | _ -> Error (Printf.sprintf "bad clock value '%s' (expected a positive number)" s)
  in
  let rec map_m f = function
    | [] -> Ok []
    | x :: xs ->
        let* y = f x in
        let* ys = map_m f xs in
        Ok (y :: ys)
  in
  let parse_dim acc dim =
    match String.index_opt dim '=' with
    | None -> Error (Printf.sprintf "bad grid dimension '%s' (expected key=v1,v2,...)" dim)
    | Some i -> (
        let key = String.trim (String.sub dim 0 i) in
        let vals = split_on_string ~sep:',' (String.sub dim (i + 1) (String.length dim - i - 1)) in
        if vals = [] then Error (Printf.sprintf "empty value list for '%s'" key)
        else
          match key with
          | "ii" ->
              let* iis = map_m parse_ii vals in
              Ok { acc with g_iis = iis }
          | "latency" | "lat" ->
              let* ls = map_m parse_latency vals in
              Ok { acc with g_latencies = ls }
          | "clock" | "clk" ->
              let* cs = map_m parse_clock vals in
              Ok { acc with g_clocks = cs }
          | _ -> Error (Printf.sprintf "unknown grid dimension '%s' (ii, latency, clock)" key))
  in
  List.fold_left
    (fun acc dim ->
      let* g = acc in
      parse_dim g dim)
    (Ok (grid ()))
    (split_on_string ~sep:';' spec)

(* ------------------------------------------------------------------ *)
(* Results *)

type profile = {
  pr_wall_s : float;
  pr_passes : int;
  pr_actions : int;
  pr_queries : int;
  pr_warm_passes : int;
  pr_cold_passes : int;
  pr_hints : int;
  pr_cached : bool;
}

type result = {
  r_point : point;
  r_flow : (Flow.t, Diag.t) Stdlib.result;
  r_profile : profile;
}

type sweep = {
  sw_results : result list;
  sw_wall_s : float;
  sw_jobs : int;
  sw_new_runs : int;
  sw_cache_hits : int;
  sw_hint_reuse : int;
      (** fresh runs that warm-started from the cross-point hint store *)
  sw_hints_extracted : int;
      (** distinct new hints this sweep mined into the store *)
}

(* ------------------------------------------------------------------ *)
(* Worker pool *)

(* The pool implementation lives in [Hls_pool.Pool] so lower layers (the
   scheduler's region-parallel SCC analysis) can share it; this alias
   keeps the historical [Dse.Pool] entry point. *)
module Pool = Hls_pool.Pool

(* ------------------------------------------------------------------ *)
(* Engine *)

type t = {
  cache : (string * point, (Flow.t, Diag.t) Stdlib.result * profile) Hashtbl.t;
      (** keyed by (base fingerprint, point) — see the module comment *)
  hints : (string, Feedback.Hints.t) Hashtbl.t;
      (** cross-point hint store, keyed by the hint-neutral design
          fingerprint; read and written only by the spawning domain *)
  mutable runs : int;
  mutable pool : Pool.t option;
}

let shutdown t =
  match t.pool with
  | None -> ()
  | Some pool ->
      Pool.shutdown pool;
      t.pool <- None

let create () =
  let t = { cache = Hashtbl.create 64; hints = Hashtbl.create 8; runs = 0; pool = None } in
  at_exit (fun () -> shutdown t);
  t

let runs_performed t = t.runs

let options_of ~(options : Flow.options) p =
  {
    options with
    Flow.ii = (match p.pt_ii with Flat ii -> Some ii | Seq | Dims _ -> None);
    ii_dims = (match p.pt_ii with Dims ds -> Some ds | Seq | Flat _ -> None);
    min_latency = p.pt_min_latency;
    max_latency = p.pt_max_latency;
    clock_ps = p.pt_clock_ps;
  }

let fingerprint ~options (design : Hls_frontend.Ast.design) p =
  (* design and options are pure data (no closures), so the marshalled
     bytes are a complete, stable description of the run *)
  Digest.to_hex (Digest.string (Marshal.to_string (design, options_of ~options p) []))

(* the per-sweep half of the cache key: everything that can influence a
   run except the swept point itself.  The four point-carried fields are
   pinned to fixed values so the digest is point-independent — the point
   joins the key structurally, sparing one Marshal+Digest per point. *)
let base_fingerprint ~(options : Flow.options) (design : Hls_frontend.Ast.design) =
  let neutral =
    { options with Flow.ii = None; min_latency = None; max_latency = None; clock_ps = 0.0 }
  in
  Digest.to_hex (Digest.string (Marshal.to_string (design, neutral) []))

(* the hint store's key: like the base fingerprint, but additionally
   neutral in everything the feedback machinery itself varies — so the
   seed run (no warm hints) and the warm-started runs of one design all
   read and write the same store entry *)
let hint_store_key ~(options : Flow.options) (design : Hls_frontend.Ast.design) =
  let neutral =
    {
      options with
      Flow.ii = None;
      min_latency = None;
      max_latency = None;
      clock_ps = 0.0;
      feedback = false;
      feedback_iters = 0;
      hints = Feedback.Hints.empty;
    }
  in
  Digest.to_hex (Digest.string (Marshal.to_string (design, neutral) []))

let run_point ~options design p : (Flow.t, Diag.t) Stdlib.result * profile =
  let t0 = Unix.gettimeofday () in
  let r = Flow.run ~options:(options_of ~options p) design in
  let wall = Unix.gettimeofday () -. t0 in
  let profile =
    match r with
    | Ok f ->
        let st = f.Flow.f_stats in
        {
          pr_wall_s = wall;
          pr_passes = st.Hls_core.Scheduler.st_passes;
          pr_actions = st.Hls_core.Scheduler.st_actions;
          pr_queries = st.Hls_core.Scheduler.st_queries;
          pr_warm_passes = st.Hls_core.Scheduler.st_warm_passes;
          pr_cold_passes = st.Hls_core.Scheduler.st_cold_passes;
          pr_hints = st.Hls_core.Scheduler.st_hints;
          pr_cached = false;
        }
    | Error d ->
        { pr_wall_s = wall; pr_passes = d.Diag.d_passes; pr_actions = 0; pr_queries = 0;
          pr_warm_passes = 0; pr_cold_passes = d.Diag.d_passes; pr_hints = 0; pr_cached = false }
  in
  (r, profile)

let validate_jobs jobs =
  if jobs < 1 then
    Diag.error ~phase:Diag.Explore ~code:"bad_jobs"
      "--jobs must be a positive worker count, got %d" jobs
  else Ok jobs

(* one memoized batch run of [points] under a single effective [options];
   the public [sweep] composes these (a plain sweep is one batch, a
   feedback sweep is a seed batch plus a warm-started batch) *)
let sweep_batch ?(jobs = 1) ?max_workers t ~options design points =
  let max_workers =
    match max_workers with Some m -> max 1 m | None -> Domain.recommended_domain_count ()
  in
  let t0 = Unix.gettimeofday () in
  let pts = Array.of_list points in
  (* one Marshal+Digest for the whole sweep; each point keys structurally *)
  let base = base_fingerprint ~options design in
  let keys = Array.map (fun p -> (base, p)) pts in
  (* unique uncached keys, in first-occurrence order *)
  let owner = Hashtbl.create 16 in
  let todo = ref [] in
  Array.iteri
    (fun i key ->
      if not (Hashtbl.mem t.cache key) && not (Hashtbl.mem owner key) then begin
        Hashtbl.replace owner key ();
        todo := (key, pts.(i)) :: !todo
      end)
    keys;
  let todo = Array.of_list (List.rev !todo) in
  let n = Array.length todo in
  let out = Array.make n None in
  let workers = max 1 (min jobs (min n max_workers)) in
  if n > 0 then
    if workers <= 1 then
      Array.iteri (fun i (_, p) -> out.(i) <- Some (run_point ~options design p)) todo
    else begin
      (* reuse (and grow if needed) the engine's resident domain pool; the
         calling domain is one of the workers, so [workers - 1] domains
         suffice.  Concurrency is capped at [workers] regardless of the
         resident pool's size by submitting [workers - 1] driver tasks,
         each an index-stealing loop over the todo array; extra resident
         domains simply stay parked. *)
      let pool =
        match t.pool with
        | Some p when Pool.alive p -> p
        | _ ->
            let p = Pool.create ~workers:(workers - 1) () in
            t.pool <- Some p;
            p
      in
      Pool.ensure pool (workers - 1);
      let next = Atomic.make 0 in
      let drive () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let _, p = todo.(i) in
            out.(i) <- Some (run_point ~options design p);
            go ()
          end
        in
        go ()
      in
      (* per-sweep completion latch: [Pool.wait] would also wait on
         unrelated tasks if the pool were shared, so each sweep counts its
         own drivers down *)
      let m = Mutex.create () in
      let c = Condition.create () in
      let left = ref 0 in
      for _ = 2 to workers do
        Mutex.lock m;
        incr left;
        Mutex.unlock m;
        let accepted =
          Pool.submit pool (fun () ->
              drive ();
              Mutex.lock m;
              decr left;
              if !left = 0 then Condition.broadcast c;
              Mutex.unlock m)
        in
        if not accepted then begin
          Mutex.lock m;
          decr left;
          Mutex.unlock m
        end
      done;
      drive ();
      Mutex.lock m;
      while !left > 0 do
        Condition.wait c m
      done;
      Mutex.unlock m
    end;
  Array.iteri
    (fun i (key, _) -> match out.(i) with Some rp -> Hashtbl.replace t.cache key rp | None -> ())
    todo;
  t.runs <- t.runs + n;
  (* assemble in input order; the first occurrence of a fresh key reports
     the live profile, every other occurrence is cache-served *)
  let fresh = Hashtbl.create 16 in
  Array.iteri (fun _ (key, _) -> Hashtbl.replace fresh key ()) todo;
  let results =
    Array.to_list
      (Array.mapi
         (fun i key ->
           let flow, profile = Hashtbl.find t.cache key in
           let cached = not (Hashtbl.mem fresh key) in
           if not cached then Hashtbl.remove fresh key;
           { r_point = pts.(i); r_flow = flow; r_profile = { profile with pr_cached = cached } })
         keys)
  in
  {
    sw_results = results;
    sw_wall_s = Unix.gettimeofday () -. t0;
    sw_jobs = workers;
    sw_new_runs = n;
    sw_cache_hits = Array.length keys - n;
    sw_hint_reuse = 0;
    sw_hints_extracted = 0;
  }

(* portable hints mined from a batch's fresh successful results, merged in
   input order (the merge is commutative, so the order is cosmetic — what
   matters for [--jobs]-invariance is that mining happens on the spawning
   domain, after the batch, from results that are themselves
   deterministic) *)
let mine_batch (sw : sweep) =
  List.fold_left
    (fun acc r ->
      match r.r_flow with
      | Ok f when not r.r_profile.pr_cached ->
          Feedback.Hints.merge acc (Feedback.Hints.portable (Feedback.extract f.Hls_flow.Flow.f_sched))
      | Ok _ | Error _ -> acc)
    Feedback.Hints.empty sw.sw_results

let sweep ?(jobs = 1) ?max_workers t ~options design points =
  if not options.Flow.feedback then sweep_batch ~jobs ?max_workers t ~options design points
  else begin
    (* Cross-point learning, [--jobs]-invariant by construction: when the
       store has nothing for this design yet, the first point runs alone
       (sequentially) to seed it; every remaining point then runs against
       that one frozen snapshot, so no point's hints depend on which
       worker finished first.  All fresh results are mined back into the
       store after the batch, in input order, on the spawning domain. *)
    let t0 = Unix.gettimeofday () in
    let key = hint_store_key ~options design in
    let snapshot0 =
      Option.value (Hashtbl.find_opt t.hints key) ~default:Feedback.Hints.empty
    in
    let seed_sw, rest, snapshot =
      if not (Feedback.Hints.is_empty snapshot0) then (None, points, snapshot0)
      else
        match points with
        | [] -> (None, [], snapshot0)
        | p0 :: rest ->
            let sw0 = sweep_batch ~jobs:1 ?max_workers t ~options design [ p0 ] in
            (Some sw0, rest, Feedback.Hints.merge snapshot0 (mine_batch sw0))
    in
    let warm_options =
      if Feedback.Hints.is_empty snapshot then options
      else { options with Flow.hints = Feedback.Hints.merge options.Flow.hints snapshot }
    in
    let rest_sw =
      if rest = [] then None
      else Some (sweep_batch ~jobs ?max_workers t ~options:warm_options design rest)
    in
    let final =
      List.fold_left Feedback.Hints.merge snapshot
        (List.filter_map (Option.map mine_batch) [ seed_sw; rest_sw ])
    in
    Hashtbl.replace t.hints key final;
    let part f d = function Some sw -> f sw | None -> d in
    let results = part (fun s -> s.sw_results) [] seed_sw @ part (fun s -> s.sw_results) [] rest_sw in
    let reused =
      if Feedback.Hints.is_empty snapshot then 0
      else part (fun s -> s.sw_new_runs) 0 rest_sw
    in
    {
      sw_results = results;
      sw_wall_s = Unix.gettimeofday () -. t0;
      sw_jobs =
        (match rest_sw with Some s -> s.sw_jobs | None -> part (fun s -> s.sw_jobs) 1 seed_sw);
      sw_new_runs = part (fun s -> s.sw_new_runs) 0 seed_sw + part (fun s -> s.sw_new_runs) 0 rest_sw;
      sw_cache_hits =
        part (fun s -> s.sw_cache_hits) 0 seed_sw + part (fun s -> s.sw_cache_hits) 0 rest_sw;
      sw_hint_reuse = reused;
      sw_hints_extracted = Feedback.Hints.size final - Feedback.Hints.size snapshot0;
    }
  end

(* ------------------------------------------------------------------ *)
(* Reporting *)

type stats = {
  s_points : int;
  s_ok : int;
  s_failed : int;
  s_cache_hits : int;
  s_new_runs : int;
  s_jobs : int;
  s_wall_s : float;
  s_points_per_s : float;
  s_cpu_s : float;
  s_passes : int;
  s_actions : int;
  s_queries : int;
  s_warm_passes : int;
  s_cold_passes : int;
  s_hints : int;
  s_hint_reuse : int;
  s_hints_extracted : int;
}

let stats sw =
  let rs = sw.sw_results in
  let count f = List.length (List.filter f rs) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  {
    s_points = List.length rs;
    s_ok = count (fun r -> Result.is_ok r.r_flow);
    s_failed = count (fun r -> Result.is_error r.r_flow);
    s_cache_hits = sw.sw_cache_hits;
    s_new_runs = sw.sw_new_runs;
    s_jobs = sw.sw_jobs;
    s_wall_s = sw.sw_wall_s;
    s_points_per_s =
      (if sw.sw_wall_s > 0.0 then float_of_int (List.length rs) /. sw.sw_wall_s else 0.0);
    s_cpu_s =
      List.fold_left
        (fun acc r -> if r.r_profile.pr_cached then acc else acc +. r.r_profile.pr_wall_s)
        0.0 rs;
    s_passes = sum (fun r -> r.r_profile.pr_passes);
    s_actions = sum (fun r -> r.r_profile.pr_actions);
    s_queries = sum (fun r -> r.r_profile.pr_queries);
    s_warm_passes = sum (fun r -> r.r_profile.pr_warm_passes);
    s_cold_passes = sum (fun r -> r.r_profile.pr_cold_passes);
    s_hints = sum (fun r -> r.r_profile.pr_hints);
    s_hint_reuse = sw.sw_hint_reuse;
    s_hints_extracted = sw.sw_hints_extracted;
  }

let stats_to_string s =
  Printf.sprintf
    "%d point(s): %d ok, %d failed; %d fresh run(s), %d cache hit(s); %d job(s), %.2fs wall \
     (%.1f points/s, %.2fs cpu); %d pass(es), %d action(s), %d timing queries%s"
    s.s_points s.s_ok s.s_failed s.s_new_runs s.s_cache_hits s.s_jobs s.s_wall_s s.s_points_per_s
    s.s_cpu_s s.s_passes s.s_actions s.s_queries
    (if s.s_hint_reuse > 0 || s.s_hints_extracted > 0 then
       Printf.sprintf "; feedback: %d point(s) hint-warmed, %d hint(s) applied, %d mined"
         s.s_hint_reuse s.s_hints s.s_hints_extracted
     else "")

let table rs =
  [ "config"; "tier"; "II"; "LI"; "delay (ns)"; "area"; "power (mW)"; "passes"; "queries";
    "wall (s)"; "cache" ]
  :: List.map
       (fun r ->
         let pr = r.r_profile in
         let base label rest =
           (point_label r.r_point :: label :: rest)
           @ [ string_of_int pr.pr_passes; string_of_int pr.pr_queries;
               Printf.sprintf "%.3f" pr.pr_wall_s; (if pr.pr_cached then "hit" else "-") ]
         in
         match r.r_flow with
         | Ok f ->
             base
               (Flow.tier_to_string f.Flow.f_tier)
               [ string_of_int f.Flow.f_cycles_per_iter;
                 string_of_int f.Flow.f_sched.Hls_core.Scheduler.s_li;
                 Printf.sprintf "%.1f" (f.Flow.f_delay_ps /. 1000.0);
                 Printf.sprintf "%.0f" f.Flow.f_area.Hls_rtl.Stats.a_total;
                 Printf.sprintf "%.2f" f.Flow.f_power_mw ]
         | Error d -> base ("FAILED: " ^ d.Diag.d_code) [ "-"; "-"; "-"; "-"; "-" ])
       rs

let pareto_points rs =
  List.filter_map
    (fun r ->
      match r.r_flow with
      | Ok f ->
          Some
            (Hls_report.Pareto.point ~x:f.Flow.f_delay_ps ~y:f.Flow.f_area.Hls_rtl.Stats.a_total r)
      | Error _ -> None)
    rs

(* minimal JSON emission, same hand-rolled style as Hls_diag *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_opt_int = function None -> "null" | Some v -> string_of_int v

let json_ii = function
  | Seq -> "null"
  | Flat ii -> string_of_int ii
  | Dims ds -> "[" ^ String.concat "," (List.map string_of_int ds) ^ "]"

let point_to_json p =
  Printf.sprintf {|{"ii":%s,"min_latency":%s,"max_latency":%s,"clock_ps":%.1f}|} (json_ii p.pt_ii)
    (json_opt_int p.pt_min_latency) (json_opt_int p.pt_max_latency) p.pt_clock_ps

let result_to_json r =
  let pr = r.r_profile in
  let profile =
    Printf.sprintf
      {|"passes":%d,"actions":%d,"queries":%d,"warm_passes":%d,"cold_passes":%d,"hints":%d,"wall_s":%.6f,"cached":%b|}
      pr.pr_passes pr.pr_actions pr.pr_queries pr.pr_warm_passes pr.pr_cold_passes pr.pr_hints
      pr.pr_wall_s pr.pr_cached
  in
  match r.r_flow with
  | Ok f ->
      Printf.sprintf
        {|{"point":%s,"status":"ok","tier":%s,"ii":%d,"li":%d,"delay_ps":%.1f,"area":%.1f,"power_mw":%.4f,%s}|}
        (point_to_json r.r_point)
        (json_str (Flow.tier_to_string f.Flow.f_tier))
        f.Flow.f_cycles_per_iter f.Flow.f_sched.Hls_core.Scheduler.s_li f.Flow.f_delay_ps
        f.Flow.f_area.Hls_rtl.Stats.a_total f.Flow.f_power_mw profile
  | Error d ->
      Printf.sprintf {|{"point":%s,"status":"error","code":%s,"message":%s,%s}|}
        (point_to_json r.r_point) (json_str d.Diag.d_code) (json_str d.Diag.d_message) profile

let stats_to_json s =
  Printf.sprintf
    {|{"points":%d,"ok":%d,"failed":%d,"cache_hits":%d,"new_runs":%d,"jobs":%d,"wall_s":%.6f,"points_per_s":%.3f,"cpu_s":%.6f,"passes":%d,"actions":%d,"queries":%d,"warm_passes":%d,"cold_passes":%d,"hints":%d,"hint_reuse":%d,"hints_extracted":%d}|}
    s.s_points s.s_ok s.s_failed s.s_cache_hits s.s_new_runs s.s_jobs s.s_wall_s s.s_points_per_s
    s.s_cpu_s s.s_passes s.s_actions s.s_queries s.s_warm_passes s.s_cold_passes s.s_hints
    s.s_hint_reuse s.s_hints_extracted

let sweep_to_json sw =
  Printf.sprintf {|{"stats":%s,"results":[%s]}|}
    (stats_to_json (stats sw))
    (String.concat "," (List.map result_to_json sw.sw_results))
