(** Subgraph-extraction feedback-guided iterative scheduling.

    The expert system relaxes constraints one batch per {e failed pass}
    from local restraint estimates.  This module closes the loop at the
    next level up, after "Subgraph Extraction-based Feedback-guided
    Iterative Scheduling for HLS" (arXiv 2401.12343): a completed (or
    failed) schedule is {e mined} for the critical subgraphs that drove
    its relaxation — negative-slack fan-in cones, contended-resource
    cliques from the busy tables, SCC stage-window violators, and the
    expert's own converged corrective state — and the findings become a
    store of typed {!Hints} that the next schedule call applies as one
    batch at pass start, instead of rediscovering them one action at a
    time.

    The module sits below the flow: it depends only on the scheduler and
    netlist layers, so both [Flow.run --feedback] (iterate on one design)
    and [Dse.sweep] (share hints across neighboring grid points) drive it
    through the generic {!iterate} combinator. *)

open Hls_techlib
module Scheduler = Hls_core.Scheduler

module Hints : sig
  (** A deterministic store of typed scheduling hints.

      The store is a map keyed by the hint itself (structural ordering),
      so its rendering, digest and application order are independent of
      extraction order; merging two stores sums recurrence counts and
      keeps the larger weight, which is how a hint that keeps showing up
      across iterations or grid points gains influence. *)

  (** One typed hint.  Op and instance ids refer to the elaborated DFG /
      netlist of the design the hint was mined from; {!apply} and the
      scheduler both skip hints whose referents do not exist in the
      target region — a hint is advice, never a hard constraint. *)
  type hint =
    | Boost of int  (** raise the op's scheduling priority *)
    | Speculate of int  (** pre-speculate the op *)
    | Dedicate of int  (** pre-dedicate the op's resource instance *)
    | Forbid of int * int  (** pre-forbid the (op, inst) pair *)
    | Scc_stage of int * int  (** pre-pin SCC [k] to this stage *)
    | Resource_floor of Resource.t * int  (** minimum instance count *)
    | Latency_floor of int  (** known-accepted latency interval *)

  (** Provenance of a hint: which extraction rule minted it. *)
  type kind =
    | Replay  (** the converged expert state of an accepted schedule *)
    | Slack_cone  (** member of a negative-slack fan-in cone *)
    | Busy_clique  (** member of a contended busy-table clique *)
    | Scc_window  (** SCC stage-window violator / pinned stage *)

  type entry = { e_kind : kind; e_weight : float; e_recur : int }

  type t

  val empty : t
  val is_empty : t -> bool
  val size : t -> int

  val add : ?kind:kind -> ?weight:float -> hint -> t -> t
  (** Insert a hint (default kind [Replay], weight 1.0); re-inserting an
      existing hint bumps its recurrence and keeps the larger weight. *)

  val merge : t -> t -> t
  (** Union; shared hints sum recurrences and keep the larger weight. *)

  val to_list : t -> (hint * entry) list
  (** All hints in the store's (deterministic, structural) key order. *)

  val ops : t -> int list
  (** Sorted distinct op ids referenced by any hint — the extracted
      subgraph's vertex set (subset-of-region invariant checks). *)

  val portable : t -> t
  (** The hints safe to carry to a {e different} micro-architecture point
      of the same design: boosts, speculations and dedications (op ids
      are elaboration-stable).  Instance pairs, SCC stages, resource
      floors and latency floors are configuration-specific and dropped. *)

  val digest : t -> string
  (** Digest of the key set only — recurrence/weight churn from
      re-extracting the same subgraphs does not change it, so iterate
      loops can detect a fixpoint. *)

  val hint_to_string : hint -> string
  val to_json : t -> string

  val to_string : t -> string
  (** Serialize the whole store (round-trips through {!of_string}). *)

  val of_string : string -> t option

  val apply : t -> Scheduler.options -> Scheduler.options
  (** Translate the store into the scheduler's batched hint options:
      boosts become [priority_boosts] (weight- and recurrence-scaled),
      floors take the per-resource maximum (and the per-design minimum
      for latency — a floor above the known-accepted LI would pad the
      schedule).  Applying an empty store returns the options unchanged. *)
end

val extract : Scheduler.t -> Hints.t
(** Mine an accepted schedule: the expert's converged corrective state
    (speculations, forbidden pairs, expert-added resource counts, SCC
    stages, the accepted latency interval) plus the critical subgraphs
    still visible in the result — fan-in cones of negative-slack
    endpoints and contended busy-table cliques, weighted by severity. *)

val extract_error : Scheduler.error -> Hints.t
(** Mine a failed schedule's restraint provenance: boosts for the
    restrained ops (weighted by restraint weight) and speculation hints
    for guarded ops that failed on slack. *)

type iter_info = {
  fi_iter : int;  (** iteration index, 0-based *)
  fi_hints_in : int;  (** hints fed into this iteration *)
  fi_new_hints : int;  (** distinct new hints extracted from its result *)
  fi_passes : int;  (** relaxation passes the iteration's schedule ran *)
  fi_quality : int * int * float;  (** (II, LI, area) of the iteration *)
  fi_kept : bool;  (** became the served best-so-far *)
}

val iterate :
  ?max_iters:int ->
  ?hints:Hints.t ->
  run:(Hints.t -> ('a, 'e) Stdlib.result) ->
  extract:('a -> Hints.t) ->
  quality:('a -> int * int * float) ->
  passes:('a -> int) ->
  unit ->
  ('a, 'e) Stdlib.result * iter_info list * Hints.t
(** The schedule → extract → re-schedule loop (at most [max_iters]
    schedule calls, default 2).  Quality is lexicographic (II, LI, area),
    lower better.  No-regress by construction: the best result seen is
    served, with ties going to the {e later} iteration (same QoR reached
    in fewer passes under the batched hints).  The loop stops early on a
    hint-digest fixpoint, on a strict quality regression, or on an error
    (which serves the best earlier result if one exists).  Returns the
    served result, per-iteration stats, and the final merged store. *)
