(** Subgraph-extraction feedback-guided iterative scheduling.  See the
    interface for the contract; the notes here cover the two invariants
    the implementation leans on.

    {b Determinism.}  The hint store is a map keyed by the hint value
    itself, so every rendering, digest and application is in structural
    key order no matter what order extraction discovered the hints in
    (the netlist busy tables and the binder's hashtables iterate in
    nondeterministic order).  This is what makes [Dse.sweep]'s shared
    store [--jobs]-invariant for free.

    {b No stale constraints.}  Hints carry op / instance / SCC ids from
    the run they were mined from.  Application (here and in the
    scheduler) vets every referent against the target region and skips
    the ones that do not exist, so a store mined on one design or
    micro-architecture point can always be offered to another. *)

open Hls_ir
open Hls_techlib
module Scheduler = Hls_core.Scheduler
module Binding = Hls_core.Binding
module Restraint = Hls_core.Restraint
module Netlist = Hls_netlist.Netlist

module Hints = struct
  type hint =
    | Boost of int
    | Speculate of int
    | Dedicate of int
    | Forbid of int * int
    | Scc_stage of int * int
    | Resource_floor of Resource.t * int
    | Latency_floor of int

  type kind = Replay | Slack_cone | Busy_clique | Scc_window

  type entry = { e_kind : kind; e_weight : float; e_recur : int }

  module M = Map.Make (struct
    type t = hint

    let compare = Stdlib.compare
  end)

  type t = entry M.t

  let empty : t = M.empty
  let is_empty = M.is_empty
  let size = M.cardinal

  let add ?(kind = Replay) ?(weight = 1.0) hint t =
    match M.find_opt hint t with
    | Some e ->
        M.add hint { e with e_weight = Float.max e.e_weight weight; e_recur = e.e_recur + 1 } t
    | None -> M.add hint { e_kind = kind; e_weight = weight; e_recur = 1 } t

  let merge a b =
    M.union
      (fun _ ea eb ->
        Some
          {
            e_kind = ea.e_kind;
            e_weight = Float.max ea.e_weight eb.e_weight;
            e_recur = ea.e_recur + eb.e_recur;
          })
      a b

  let to_list t = M.bindings t

  let ops t =
    M.fold
      (fun h _ acc ->
        match h with
        | Boost op | Speculate op | Dedicate op | Forbid (op, _) -> op :: acc
        | Scc_stage _ | Resource_floor _ | Latency_floor _ -> acc)
      t []
    |> List.sort_uniq compare

  let portable t =
    M.filter (fun h _ -> match h with Boost _ | Speculate _ | Dedicate _ -> true | _ -> false) t

  let digest t =
    let keys = M.fold (fun h _ acc -> h :: acc) t [] in
    Digest.to_hex (Digest.string (Marshal.to_string keys []))

  let hint_to_string = function
    | Boost op -> Printf.sprintf "boost(%d)" op
    | Speculate op -> Printf.sprintf "speculate(%d)" op
    | Dedicate op -> Printf.sprintf "dedicate(%d)" op
    | Forbid (op, inst) -> Printf.sprintf "forbid(%d,%d)" op inst
    | Scc_stage (k, s) -> Printf.sprintf "scc_stage(%d,%d)" k s
    | Resource_floor (rt, n) -> Printf.sprintf "floor(%s,%d)" (Resource.to_string rt) n
    | Latency_floor li -> Printf.sprintf "latency_floor(%d)" li

  let kind_to_string = function
    | Replay -> "replay"
    | Slack_cone -> "slack_cone"
    | Busy_clique -> "busy_clique"
    | Scc_window -> "scc_window"

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json t =
    "["
    ^ String.concat ","
        (List.map
           (fun (h, e) ->
             Printf.sprintf {|{"hint":"%s","kind":"%s","weight":%g,"recur":%d}|}
               (json_escape (hint_to_string h))
               (kind_to_string e.e_kind) e.e_weight e.e_recur)
           (to_list t))
    ^ "]"

  (* serialization: hex of the marshalled binding list — the bindings are
     pure data (the only float is the weight), and rebuilding the map from
     the list sidesteps any dependence on the map's internal layout *)
  let to_string t =
    let s = Marshal.to_string (to_list t) [] in
    let b = Buffer.create (2 * String.length s) in
    String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
    Buffer.contents b

  let of_string s =
    let n = String.length s in
    if n mod 2 <> 0 then None
    else
      match
        let raw = Bytes.create (n / 2) in
        for i = 0 to (n / 2) - 1 do
          Bytes.set raw i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
        done;
        (Marshal.from_string (Bytes.to_string raw) 0 : (hint * entry) list)
      with
      | exception _ -> None
      | l -> Some (List.fold_left (fun acc (h, e) -> M.add h e acc) M.empty l)

  (* priority-boost magnitude: scaled by severity and recurrence, capped
     well below the mobility term so a hint reorders ties rather than
     overriding the paper's priority function *)
  let boost_delta e = Float.min 40.0 (5.0 *. e.e_weight *. float_of_int e.e_recur)

  let apply t (o : Scheduler.options) =
    if is_empty t then o
    else begin
      let boosts = ref [] in
      let specs = ref [] in
      let dedicated = ref [] in
      let forbids = ref [] in
      let scc_stages = Hashtbl.create 8 in
      let floors = Hashtbl.create 8 in
      let lat = ref None in
      M.iter
        (fun h e ->
          match h with
          | Boost op -> boosts := (op, boost_delta e) :: !boosts
          | Speculate op -> specs := op :: !specs
          | Dedicate op -> dedicated := op :: !dedicated
          | Forbid (op, inst) -> forbids := (op, inst) :: !forbids
          | Scc_stage (k, s) ->
              let prev = Option.value (Hashtbl.find_opt scc_stages k) ~default:0 in
              Hashtbl.replace scc_stages k (max prev s)
          | Resource_floor (rt, n) ->
              let prev = Option.value (Hashtbl.find_opt floors rt) ~default:0 in
              Hashtbl.replace floors rt (max prev n)
          | Latency_floor li ->
              lat := Some (match !lat with Some l -> min l li | None -> li))
        t;
      let dedup l = List.sort_uniq compare l in
      let sorted_tbl tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
      {
        o with
        Scheduler.priority_boosts = dedup (!boosts @ o.Scheduler.priority_boosts);
        speculated_ops = dedup (!specs @ o.Scheduler.speculated_ops);
        dedicated_ops = dedup (!dedicated @ o.Scheduler.dedicated_ops);
        forbidden_pairs = dedup (!forbids @ o.Scheduler.forbidden_pairs);
        scc_stage_hints = sorted_tbl scc_stages;
        resource_floors = sorted_tbl floors;
        latency_floor =
          (match (!lat, o.Scheduler.latency_floor) with
          | Some a, Some b -> Some (min a b)
          | (Some _ as s), None | None, (Some _ as s) -> s
          | None, None -> None);
      }
    end
end

(* ------------------------------------------------------------------ *)
(* Extraction *)

(* fan-in cones stay shallow: the ops within a few dependence hops of a
   violating endpoint are the ones whose placement order decides whether
   the chain registers apart *)
let cone_depth = 3

let extract (s : Scheduler.t) : Hints.t =
  let b = s.Scheduler.s_binding in
  let dfg = b.Binding.dfg in
  let net = b.Binding.net in
  let h = ref Hints.empty in
  let add ?kind ?weight hint = h := Hints.add ?kind ?weight hint !h in
  (* --- the expert's converged corrective state (replay hints) --- *)
  Dfg.iter_ops dfg (fun o -> if o.Dfg.speculated then add (Hints.Speculate o.Dfg.id));
  Hashtbl.iter (fun (op, inst) () -> add (Hints.Forbid (op, inst))) b.Binding.forbidden;
  Hashtbl.iter (fun op () -> add (Hints.Dedicate op)) b.Binding.dedicated;
  let insts = Netlist.insts net in
  let expert_types =
    List.filter_map
      (fun (i : Binding.inst) -> if i.Binding.added_by_expert then Some i.Binding.rtype else None)
      insts
    |> List.sort_uniq compare
  in
  List.iter
    (fun rt ->
      let n =
        List.length (List.filter (fun (i : Binding.inst) -> i.Binding.rtype = rt) insts)
      in
      add (Hints.Resource_floor (rt, n)))
    expert_types;
  List.iteri
    (fun k (_ops, stage) ->
      if stage > 0 then add ~kind:Hints.Scc_window (Hints.Scc_stage (k, stage)))
    s.Scheduler.s_scc_stages;
  if not (Region.is_pipelined s.Scheduler.s_region) then
    add (Hints.Latency_floor s.Scheduler.s_li);
  (* --- critical-slack fan-in cones --- *)
  (* on a failed pass the violators have negative slack; on an accepted
     schedule nothing does, so the miner also takes the endpoints inside a
     guard band of the clock — the cones that barely made it are the ones
     whose placement order decides whether the next (tighter) run
     registers them apart *)
  let slack_band = 0.15 *. Float.max 1.0 b.Binding.clock_ps in
  let cone_from op0 severity =
    let seen = Hashtbl.create 16 in
    let rec walk op depth =
      if depth >= 0 && not (Hashtbl.mem seen op) && Dfg.mem dfg op then begin
        Hashtbl.replace seen op ();
        let o = Dfg.find dfg op in
        if Opkind.is_resource_op o.Dfg.kind then
          add ~kind:Hints.Slack_cone ~weight:(1.0 +. severity) (Hints.Boost op);
        List.iter
          (fun (e : Dfg.edge) -> if e.Dfg.distance = 0 then walk e.Dfg.src (depth - 1))
          (Dfg.in_edges dfg op)
      end
    in
    walk op0 cone_depth
  in
  List.iter
    (fun op ->
      let sl = Binding.endpoint_slack b ~naive:false op in
      if sl < slack_band then
        cone_from op ((slack_band -. sl) /. Float.max 1.0 b.Binding.clock_ps))
    (Netlist.registered_ops net);
  (* --- contended busy-table cliques --- *)
  (* binding is exclusive, so no accepted slot ever holds two ops; the
     contention signal on success is a saturated instance — busy in every
     slot of the schedule with several ops packed rigidly onto it.  Those
     ops have no binding freedom left, so a re-run wants them placed
     first. *)
  let busy = Netlist.dump_busy net in
  let total_slots =
    List.fold_left (fun acc ((_, slot), _) -> max acc (slot + 1)) 0 busy
  in
  let per_inst = Hashtbl.create 16 in
  List.iter
    (fun ((inst, slot), ops) ->
      let slots, iops = Option.value (Hashtbl.find_opt per_inst inst) ~default:([], []) in
      Hashtbl.replace per_inst inst (slot :: slots, ops @ iops))
    busy;
  Hashtbl.iter
    (fun _ (slots, iops) ->
      let n_slots = List.length (List.sort_uniq compare slots) in
      let iops = List.sort_uniq compare iops in
      if total_slots > 0 && n_slots >= total_slots && List.length iops >= 2 then
        List.iter (fun op -> add ~kind:Hints.Busy_clique ~weight:0.5 (Hints.Boost op)) iops)
    per_inst;
  !h

let extract_error (e : Scheduler.error) : Hints.t =
  List.fold_left
    (fun acc (r : Restraint.t) ->
      let w = Float.max 0.1 r.Restraint.r_weight in
      let acc = Hints.add ~kind:Hints.Slack_cone ~weight:w (Hints.Boost r.Restraint.r_op) acc in
      match r.Restraint.r_fail with
      | Restraint.F_busy rt | Restraint.F_no_resource rt ->
          Hints.add ~kind:Hints.Busy_clique ~weight:w (Hints.Resource_floor (rt, 1)) acc
      | _ -> acc)
    Hints.empty e.Scheduler.e_restraints

(* ------------------------------------------------------------------ *)
(* The iterate loop *)

type iter_info = {
  fi_iter : int;
  fi_hints_in : int;
  fi_new_hints : int;
  fi_passes : int;
  fi_quality : int * int * float;
  fi_kept : bool;
}

let iterate ?(max_iters = 2) ?(hints = Hints.empty) ~run ~extract ~quality ~passes () =
  let max_iters = max 1 max_iters in
  let infos = ref [] in
  let finish best hints =
    match best with
    | Some (r, _) -> (Stdlib.Ok r, List.rev !infos, hints)
    | None -> assert false
  in
  let rec go i hints best =
    if i >= max_iters then finish best hints
    else
      match run hints with
      | Stdlib.Error e -> (
          (* an iteration that fails outright cannot improve on what we
             already hold; serve the best earlier result if there is one *)
          match best with
          | Some _ -> finish best hints
          | None -> (Stdlib.Error e, List.rev !infos, hints))
      | Stdlib.Ok r ->
          let q = quality r in
          (* ties go to the later iteration: same QoR, fewer passes under
             the batched hints *)
          let kept = match best with Some (_, qb) -> compare q qb <= 0 | None -> true in
          let best = if kept then Some (r, q) else best in
          let extracted = extract r in
          let merged = Hints.merge hints extracted in
          infos :=
            {
              fi_iter = i;
              fi_hints_in = Hints.size hints;
              fi_new_hints = Hints.size merged - Hints.size hints;
              fi_passes = passes r;
              fi_quality = q;
              fi_kept = kept;
            }
            :: !infos;
          if (not kept) || Hints.digest merged = Hints.digest hints then finish best merged
          else go (i + 1) merged best
  in
  go 0 hints None
