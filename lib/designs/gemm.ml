(** Streaming general matrix multiply — the library's 3-deep counted
    nest.  One multiply–accumulate per innermost iteration over streamed
    operand ports; the accumulator is zeroed per output element (the
    middle loop's prologue) and the element written after the reduction
    (its epilogue):

    {[
      for (i = 0; i < n; i++)           // row
        for (j = 0; j < n; j++) {       // col
          acc = 0;
          for (k = 0; k < n; k++)       // mac
            acc += a * b;
          write c acc;
        }
    ]}

    The frontend flattens all three dimensions onto one combined
    induction counter ({!Hls_frontend.Nest.flatten3}), so the pipeline
    kernel is the single multiply–accumulate and the enclosing rows'
    IIs derive by stride.  The legacy lowering would instead unroll
    [n^2] copies of the MAC into the outer body. *)

open Hls_frontend

let design ?(n = 4) ?(width = 8) ?(min_latency = 1) ?(max_latency = 16) ?ii () =
  let open Dsl in
  let acc_w = (2 * width) + 8 in
  let mac = [ "acc" := v "acc" +: (port "a" *: port "b"); wait ] in
  let col =
    [
      "acc" := int_w 0 ~width:acc_w;
      for_ ~name:"mac" ?ii ~min_latency ~max_latency "k" ~from:0 ~below:n mac;
      write "c" (v "acc");
    ]
  in
  design
    (Printf.sprintf "gemm%d" n)
    ~ins:[ in_port "a" width; in_port "b" width ]
    ~outs:[ out_port "c" acc_w ]
    ~vars:[ var "acc" acc_w; var "i" 8; var "j" 8; var "k" 8 ]
    [
      for_ ~name:"row" "i" ~from:0 ~below:n
        [ for_ ~name:"col" "j" ~from:0 ~below:n col ];
    ]

let elaborated ?n ?width ?min_latency ?max_latency ?ii () =
  Elaborate.design (design ?n ?width ?min_latency ?max_latency ?ii ())
