(** End-to-end HLS flow: elaborate → schedule+bind → fold → area/power →
    functional verification.

    One call to {!run} performs what the paper's Fig. 2 tool flow does for
    one micro-architectural configuration, and returns everything the
    evaluation section reports: the schedule, the folded pipeline, the area
    breakdown (post-synthesis sized), the activity-based power estimate,
    the delay point (II × Tclk — the inverse-throughput axis of Figures 10
    and 11), and a functional-equivalence verdict against the behavioural
    golden model.

    Robustness contract: {!run} never raises and always terminates within
    the scheduler's pass/action/wall-clock budgets.  Failures come back as
    typed {!Hls_diag.Diag.t} values.  When [degrade] is on (the default)
    and the requested configuration is overconstrained or runs out of
    budget, the flow walks a graceful-degradation ladder — relax the
    initiation interval, drop to non-pipelined scheduling, finally fall
    back to the decoupled baseline scheduler — and records the tier that
    actually served the result. *)

open Hls_ir
open Hls_frontend
open Hls_core
module Diag = Hls_diag.Diag
module Feedback = Hls_feedback.Feedback

type tier =
  | Tier_requested  (** the configuration the caller asked for *)
  | Tier_relaxed_ii of int  (** pipelined, but at this larger II *)
  | Tier_sequential  (** non-pipelined scheduling of the same design *)
  | Tier_baseline  (** the decoupled schedule-then-fold baseline engine *)

let tier_to_string = function
  | Tier_requested -> "requested"
  | Tier_relaxed_ii ii -> Printf.sprintf "relaxed-ii(%d)" ii
  | Tier_sequential -> "sequential"
  | Tier_baseline -> "baseline"

type options = {
  lib : Hls_techlib.Library.t;
  clock_ps : float;
  ii : int option;  (** pipeline with this initiation interval *)
  ii_dims : int list option;
      (** per-dimension II request for a loop nest, outermost first
          (e.g. [[4; 1]]); the innermost entry is the kernel II, each
          enclosing entry must equal [kernel II x stride] (checked) *)
  nest_mode : Desugar.nest_mode;
      (** counted-nest lowering: [`Flatten] (default) or [`Unroll] (the
          1-D baseline that fully unrolls inner loops) *)
  min_latency : int option;  (** override the loop's latency bounds *)
  max_latency : int option;
  sched : Scheduler.options;
  verify : bool;  (** run the simulators and check equivalence *)
  sim_iters : int;
  seed : int;
  degrade : bool;  (** walk the degradation ladder instead of failing *)
  paranoid : bool;  (** audit every schedule with {!Hls_check.Audit} *)
  feedback : bool;
      (** run the subgraph-extraction feedback loop: schedule → extract
          critical-subgraph hints → re-schedule with them batched in,
          serving the best (II, LI, area) iteration *)
  feedback_iters : int;  (** schedule calls the feedback loop may spend *)
  hints : Feedback.Hints.t;
      (** pre-mined hints applied to every schedule call (the DSE engine
          threads a shared store through here) *)
}

let default_options =
  {
    lib = Hls_techlib.Library.artisan90;
    clock_ps = 1600.0;
    ii = None;
    ii_dims = None;
    nest_mode = `Flatten;
    min_latency = None;
    max_latency = None;
    sched = Scheduler.default_options;
    verify = true;
    sim_iters = 100;
    seed = 1;
    degrade = true;
    paranoid = false;
    feedback = false;
    feedback_iters = 2;
    hints = Feedback.Hints.empty;
  }

type t = {
  f_design : Ast.design;
  f_elab : Elaborate.t;
  f_region : Region.t;
  f_sched : Scheduler.t;
  f_fold : Pipeline.t;
  f_area : Hls_rtl.Stats.breakdown;
  f_power_mw : float;
  f_equiv : Hls_sim.Equiv.verdict option;
  f_cycles_per_iter : int;  (** steady-state initiation interval *)
  f_delay_ps : float;  (** inverse throughput: II * Tclk *)
  f_clock_ps : float;
  f_tier : tier;  (** which degradation tier served this result *)
  f_notes : Diag.t list;  (** warnings accumulated on the way (degradations) *)
  f_stats : Scheduler.stats;  (** pass/action/query profiling counters *)
}

let diag_of_sched_error (e : Scheduler.error) : Diag.t =
  Diag.make ~phase:Diag.Schedule
    ~severity:(if e.Scheduler.e_code = "internal" then Diag.Fatal else Diag.Error)
    ~code:e.Scheduler.e_code
    ~restraints:(List.map Restraint.to_string e.Scheduler.e_restraints)
    ~actions:e.Scheduler.e_actions ~passes:e.Scheduler.e_passes ?budget:e.Scheduler.e_budget "%s"
    e.Scheduler.e_message

(* ------------------------------------------------------------------ *)

(** Resolve the caller's II request to the kernel II the scheduler takes.
    A flat [ii] passes through.  A per-dimension request ([ii_dims],
    outermost first) is validated against the flattened nest: the
    innermost entry is the kernel II, and each enclosing dimension's entry
    must equal [kernel II x stride of that dimension] — on the flattened
    path an outer dimension can only initiate once per full inner sweep. *)
let resolve_ii ~options (elab : Elaborate.t) : (int option, Diag.t) Stdlib.result =
  match (options.ii, options.ii_dims) with
  | Some _, _ | None, None -> Stdlib.Ok options.ii
  | None, Some [] -> Diag.error ~phase:Diag.Frontend ~code:"nest_ii" "empty per-dimension II list"
  | None, Some [ ii ] -> Stdlib.Ok (Some ii)
  | None, Some dims -> (
      match elab.Elaborate.nest with
      | None ->
          Diag.error ~phase:Diag.Frontend ~code:"nest_ii"
            "per-dimension II %s requested but the design has no flattened loop nest"
            (String.concat "x" (List.map string_of_int dims))
      | Some info ->
          let nd = List.length info.Hls_frontend.Nest.ni_dims in
          if List.length dims <> nd then
            Diag.error ~phase:Diag.Frontend ~code:"nest_ii"
              "per-dimension II has %d entries but the nest has %d dimensions"
              (List.length dims) nd
          else
            let kernel = List.nth dims (nd - 1) in
            let trips = List.map (fun d -> d.Hls_frontend.Nest.d_trip) info.Hls_frontend.Nest.ni_dims in
            (* stride of dimension i (outermost first) = product of trips
               of the dimensions strictly inside it *)
            let rec strides = function [] -> [] | _ :: rest as l ->
              List.fold_left (fun a t -> a * t) 1 (List.tl l) :: strides rest
            in
            let expected = List.map (fun s -> kernel * s) (strides trips) in
            if List.for_all2 ( = ) dims expected then Stdlib.Ok (Some kernel)
            else
              Diag.error ~phase:Diag.Frontend ~code:"nest_ii"
                "per-dimension II %s is unachievable on the flattened nest: with kernel II %d the \
                 achievable vector is %s"
                (String.concat "x" (List.map string_of_int dims))
                kernel
                (String.concat "x" (List.map string_of_int expected)))

(** Elaborate a design and build its main region, converting every frontend
    exception (including designer-bound violations from {!Region.create})
    into a typed diagnostic. *)
let elaborate_guarded ~options (design : Ast.design) :
    (Elaborate.t * Region.t, Diag.t) Stdlib.result =
  match Elaborate.design ~nest:options.nest_mode design with
  | exception Hls_frontend.Fault.Error f ->
      (* preserve the typed machine code (e.g. nest_shape, unroll_overflow) *)
      Diag.error ~phase:Diag.Frontend ~code:(Hls_frontend.Fault.code f) "%s"
        (Hls_frontend.Fault.message f)
  | exception Invalid_argument m ->
      Diag.error ~phase:Diag.Frontend ~code:"invalid_design" "%s" m
  | exception Failure m -> Diag.error ~phase:Diag.Frontend ~code:"internal" ~severity:Diag.Fatal "%s" m
  | elab -> (
      match Cdfg.validate elab.Elaborate.cdfg with
      | _ :: _ as errs ->
          Diag.error ~phase:Diag.Elaborate ~code:"invalid_cdfg" "invalid CDFG: %s"
            (String.concat "; " errs)
      | [] -> (
          match resolve_ii ~options elab with
          | Stdlib.Error d -> Stdlib.Error d
          | Stdlib.Ok ii -> (
              match
                Elaborate.main_region ?ii ?min_latency:options.min_latency
                  ?max_latency:options.max_latency elab
              with
              | exception Invalid_argument m ->
                  Diag.error ~phase:Diag.Elaborate ~code:"invalid_bounds" "%s" m
              | exception Failure m ->
                  Diag.error ~phase:Diag.Elaborate ~code:"internal" ~severity:Diag.Fatal "%s" m
              | region -> Ok (elab, region))))

(** Fold, audit, size, simulate — everything downstream of a successful
    schedule, shared by all tiers.  [check_timing] is off for the
    timing-naive baseline tier. *)
let finish ~options ~tier ~check_timing (design : Ast.design) elab region (sched : Scheduler.t) :
    (t, Diag.t) Stdlib.result =
  let ( let* ) r f = match r with Stdlib.Error e -> Stdlib.Error e | Stdlib.Ok x -> f x in
  let guard ~phase ~code f =
    match f () with
    | exception Invalid_argument m -> Diag.error ~phase ~code "%s" m
    | exception Failure m -> Diag.error ~phase ~code ~severity:Diag.Fatal "%s" m
    | exception Hls_sim.Kernel_sim.Watchdog d -> Stdlib.Error d
    | x -> Stdlib.Ok x
  in
  let* fold = guard ~phase:Diag.Fold ~code:"internal" (fun () -> Pipeline.fold sched) in
  let* () =
    match Pipeline.validate sched fold with
    | [] -> Stdlib.Ok ()
    | errs ->
        Diag.error ~phase:Diag.Fold ~code:"fold_invariants" "folding invariants violated: %s"
          (String.concat "; " errs)
  in
  let* () =
    if not options.paranoid then Stdlib.Ok ()
    else
      let* viols =
        guard ~phase:Diag.Check ~code:"internal" (fun () ->
            Hls_check.Audit.run ~check_timing region sched fold)
      in
      match viols with
      | [] -> Stdlib.Ok ()
      | vs ->
          Diag.error ~phase:Diag.Check ~code:"audit" "paranoid audit found %d violation(s): %s"
            (List.length vs)
            (String.concat "; " (Hls_check.Audit.to_strings vs))
  in
  let* area =
    guard ~phase:Diag.Report ~code:"internal" (fun () ->
        let io_widths = List.map snd (design.Ast.d_ins @ design.Ast.d_outs) in
        Hls_rtl.Stats.area ~io_widths sched)
  in
  let* equiv, activity, iters =
    if not options.verify then Stdlib.Ok (None, None, 1)
    else
      guard ~phase:Diag.Verify ~code:"internal" (fun () ->
          let stim =
            Hls_sim.Stimulus.small_random ~seed:options.seed ~n_iters:options.sim_iters
              ~ports:design.Ast.d_ins
          in
          let golden = Hls_sim.Behav.run ~nest:options.nest_mode design stim in
          let sim = Hls_sim.Schedule_sim.run elab sched stim in
          let v = Hls_sim.Equiv.check ~out_ports:design.Ast.d_outs golden sim in
          let v =
            (* kernel gate: every pipelined region (and every flattened
               nest) must also stay byte-identical through the folded
               kernel — cheap now that the compiled engine is the default *)
            if Region.is_pipelined region || Region.nest region <> None then
              Hls_sim.Equiv.both v
                (Hls_sim.Equiv.check_kernel ~out_ports:design.Ast.d_outs golden
                   (Hls_sim.Kernel_sim.run elab sched stim))
            else v
          in
          (Some v, Some sim.Hls_sim.Schedule_sim.r_exec_counts, sim.Hls_sim.Schedule_sim.r_iters))
  in
  let* power =
    guard ~phase:Diag.Report ~code:"internal" (fun () ->
        Hls_rtl.Stats.power ?activity ~iters sched area ~clock_ps:options.clock_ps)
  in
  let ii = Region.ii region in
  Stdlib.Ok
    {
      f_design = design;
      f_elab = elab;
      f_region = region;
      f_sched = sched;
      f_fold = fold;
      f_area = area;
      f_power_mw = power;
      f_equiv = equiv;
      f_cycles_per_iter = ii;
      f_delay_ps = float_of_int ii *. options.clock_ps;
      f_clock_ps = options.clock_ps;
      f_tier = tier;
      f_notes = [];
      f_stats = Scheduler.stats sched;
    }

(** One complete attempt with the unified scheduler at [options.ii].
    Elaboration is always fresh (scheduling mutates speculation flags and
    the region latency), so one [Ast.design] value can be explored under
    many configurations. *)
let run_unified ~options ~trace ~tier (design : Ast.design) : (t, Diag.t) Stdlib.result =
  match elaborate_guarded ~options design with
  | Stdlib.Error d -> Stdlib.Error d
  | Stdlib.Ok (elab, region) -> (
      match
        Scheduler.schedule ~opts:options.sched ?trace ~lib:options.lib ~clock_ps:options.clock_ps
          region
      with
      | exception Invalid_argument m ->
          Diag.error ~phase:Diag.Schedule ~code:"internal" ~severity:Diag.Fatal "%s" m
      | exception Failure m ->
          Diag.error ~phase:Diag.Schedule ~code:"internal" ~severity:Diag.Fatal "%s" m
      | Stdlib.Error e -> Stdlib.Error (diag_of_sched_error e)
      | Stdlib.Ok sched ->
          let check_timing = not options.sched.Scheduler.tolerate_scc_slack in
          finish ~options ~tier ~check_timing design elab region sched)

(** The last rung: the decoupled schedule-then-fold baseline on a
    sequential region.  Structurally valid by construction (and audited
    like any other tier), but timing-naive — the area report carries any
    residual negative slack as post-synthesis upsizing/WNS. *)
let run_baseline ~options (design : Ast.design) : (t, Diag.t) Stdlib.result =
  (* Sehwa folds at a fixed II with LI in (II, max_steps]; sweep the II
     upward from the request and serve the first configuration that folds.
     Each attempt elaborates fresh, as everywhere else in the flow. *)
  let attempt ii : (t, Diag.t) Stdlib.result =
    match elaborate_guarded ~options:{ options with ii = None; ii_dims = None } design with
    | Stdlib.Error d -> Stdlib.Error d
    | Stdlib.Ok (elab, region) -> (
        match Hls_baseline.Sehwa.schedule ~ii ~lib:options.lib ~clock_ps:options.clock_ps region with
        | exception Invalid_argument m ->
            Diag.error ~phase:Diag.Schedule ~code:"baseline_internal" ~severity:Diag.Fatal "%s" m
        | exception Failure m ->
            Diag.error ~phase:Diag.Schedule ~code:"baseline_internal" ~severity:Diag.Fatal "%s" m
        | Stdlib.Error e ->
            Diag.error ~phase:Diag.Schedule ~code:"baseline_failed" "baseline scheduler failed: %s"
              e.Hls_baseline.Sehwa.s_message
        | Stdlib.Ok b ->
            let sched =
              {
                Scheduler.s_region = region;
                s_li = b.Hls_baseline.Sehwa.s_li;
                s_binding = b.Hls_baseline.Sehwa.s_binding;
                s_passes = b.Hls_baseline.Sehwa.s_attempts;
                s_actions = [ "degraded to the baseline schedule-then-fold engine" ];
                s_scc_stages = List.map (fun scc -> (scc, 0)) (Region.sccs region);
                s_sched_time_s = b.Hls_baseline.Sehwa.s_time_s;
                s_warm_passes = 0;
                s_cold_passes = b.Hls_baseline.Sehwa.s_attempts;
                s_hints_applied = 0;
              }
            in
            finish ~options ~tier:Tier_baseline ~check_timing:false design elab region sched)
  in
  match elaborate_guarded ~options:{ options with ii = None; ii_dims = None } design with
  | Stdlib.Error d -> Stdlib.Error d
  | Stdlib.Ok (_, region0) ->
      let max_ii = max 1 (region0.Region.max_steps - 1) in
      let start = match options.ii with Some i when i >= 1 -> min i max_ii | _ -> 1 in
      let rec sweep ii last =
        if ii > max_ii then last
        else
          match attempt ii with
          | Stdlib.Ok r -> Stdlib.Ok r
          | Stdlib.Error d -> sweep (ii + 1) (Stdlib.Error d)
      in
      sweep start
        (Diag.error ~phase:Diag.Schedule ~code:"baseline_failed"
           "baseline scheduler has no feasible II in [%d, %d]" start max_ii)

(* ------------------------------------------------------------------ *)

(** Phases whose failure the degradation ladder can do something about:
    a weaker configuration may still schedule, fold and audit clean.
    Frontend/elaboration faults and simulation mismatches are not
    recoverable by relaxing performance constraints. *)
let degradable (d : Diag.t) =
  match d.Diag.d_phase with
  | Diag.Schedule | Diag.Fold | Diag.Check -> true
  | Diag.Frontend | Diag.Elaborate | Diag.Report | Diag.Verify | Diag.Explore | Diag.Serve
  | Diag.Feedback ->
      false

let run_ladder ~options ~trace (design : Ast.design) : (t, Diag.t) Stdlib.result =
  match run_unified ~options ~trace ~tier:Tier_requested design with
  | Stdlib.Ok r -> Stdlib.Ok r
  | Stdlib.Error d0 when (not options.degrade) || not (degradable d0) -> Stdlib.Error d0
  | Stdlib.Error d0 ->
      let rungs =
        (match options.ii with
        | Some i ->
            let relaxed =
              List.sort_uniq compare [ i + 1; i * 2 ] |> List.filter (fun j -> j > i)
            in
            List.map
              (fun j ->
                ( Tier_relaxed_ii j,
                  fun () ->
                    run_unified ~options:{ options with ii = Some j; ii_dims = None } ~trace
                      ~tier:(Tier_relaxed_ii j) design ))
              relaxed
            @ [
                ( Tier_sequential,
                  fun () ->
                    run_unified
                      ~options:{ options with ii = None; ii_dims = None }
                      ~trace ~tier:Tier_sequential
                      design );
              ]
        | None -> [])
        @ [ (Tier_baseline, fun () -> run_baseline ~options design) ]
      in
      let note_of tier (d : Diag.t) =
        Diag.make ~phase:d.Diag.d_phase ~severity:Diag.Warning ~code:"degraded"
          ?budget:d.Diag.d_budget ~passes:d.Diag.d_passes
          "%s tier failed (%s: %s); degrading" (tier_to_string tier) d.Diag.d_code
          d.Diag.d_message
      in
      let rec walk notes = function
        | [] -> Stdlib.Error d0  (* every rung failed: report the original fault *)
        | (tier, attempt) :: rest -> (
            match attempt () with
            | Stdlib.Ok r -> Stdlib.Ok { r with f_notes = List.rev notes @ r.f_notes }
            | Stdlib.Error d -> walk (note_of tier d :: notes) rest)
      in
      walk [ note_of Tier_requested d0 ] rungs

let feedback_note (it : Feedback.iter_info) =
  let ii, li, area = it.Feedback.fi_quality in
  Diag.make ~phase:Diag.Feedback ~severity:Diag.Info ~code:"feedback_iter"
    ~passes:it.Feedback.fi_passes
    "feedback iteration %d: %d hint(s) in, %d new, II=%d LI=%d area=%.0f, %d pass(es)%s"
    it.Feedback.fi_iter it.Feedback.fi_hints_in it.Feedback.fi_new_hints ii li area
    it.Feedback.fi_passes
    (if it.Feedback.fi_kept then " [kept]" else " [regressed; discarded]")

let run ?(options = default_options) ?trace (design : Ast.design) : (t, Diag.t) Stdlib.result =
  (* pre-mined hints (the DSE engine's shared store, or a caller's) are
     applied whether or not the iterate loop runs; an empty store leaves
     the scheduler options — and therefore every golden byte — untouched *)
  let run_with hints =
    let sched = Feedback.Hints.apply hints options.sched in
    run_ladder ~options:{ options with sched } ~trace design
  in
  if not options.feedback then run_with options.hints
  else
    let result, iters, _store =
      Feedback.iterate ~max_iters:options.feedback_iters ~hints:options.hints ~run:run_with
        ~extract:(fun f -> Feedback.extract f.f_sched)
        ~quality:(fun f ->
          (f.f_cycles_per_iter, f.f_sched.Scheduler.s_li, f.f_area.Hls_rtl.Stats.a_total))
        ~passes:(fun f -> f.f_stats.Scheduler.st_passes)
        ()
    in
    match result with
    | Stdlib.Ok f -> Stdlib.Ok { f with f_notes = f.f_notes @ List.map feedback_note iters }
    | Stdlib.Error d -> Stdlib.Error d

(** Convenience: run and raise on error (used by examples and benches). *)
let run_exn ?options ?trace design =
  match run ?options ?trace design with
  | Stdlib.Ok r -> r
  | Stdlib.Error e -> failwith (Diag.to_string e)

(** Achieved per-dimension IIs, outermost first, when the scheduled
    region is a flattened loop nest; [[]] otherwise. *)
let per_dim_iis (r : t) = Region.per_dim_iis r.f_region ~kernel_ii:r.f_cycles_per_iter

let summary (r : t) =
  Printf.sprintf "%s: LI=%d II=%d clock=%.0fps delay=%.0fps area=%.0f power=%.2fmW%s%s%s"
    r.f_design.Ast.d_name r.f_sched.Scheduler.s_li r.f_cycles_per_iter r.f_clock_ps r.f_delay_ps
    r.f_area.Hls_rtl.Stats.a_total r.f_power_mw
    (match per_dim_iis r with
    | [] -> ""
    | iis -> Printf.sprintf " nest-II=%s" (String.concat "x" (List.map string_of_int iis)))
    (match r.f_tier with
    | Tier_requested -> ""
    | t -> Printf.sprintf " [degraded: %s]" (tier_to_string t))
    (match r.f_equiv with
    | Some v when v.Hls_sim.Equiv.equivalent -> " [verified]"
    | Some _ -> " [MISMATCH]"
    | None -> "")
