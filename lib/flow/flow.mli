(** End-to-end HLS flow: elaborate → schedule+bind → fold → area/power →
    functional verification — one call per micro-architectural
    configuration, returning everything the paper's evaluation reports.

    Robustness contract: {!run} never raises and always terminates within
    the scheduler budgets; failures are typed {!Hls_diag.Diag.t} values,
    and (with [degrade] on) an overconstrained or budget-exhausted request
    degrades down a ladder — relaxed II, then sequential scheduling, then
    the baseline engine — recording the tier served. *)

open Hls_frontend
module Diag = Hls_diag.Diag

type tier =
  | Tier_requested  (** the configuration the caller asked for *)
  | Tier_relaxed_ii of int  (** pipelined, but at this larger II *)
  | Tier_sequential  (** non-pipelined scheduling of the same design *)
  | Tier_baseline  (** the decoupled schedule-then-fold baseline engine *)

val tier_to_string : tier -> string

type options = {
  lib : Hls_techlib.Library.t;
  clock_ps : float;
  ii : int option;  (** pipeline with this initiation interval *)
  ii_dims : int list option;
      (** per-dimension II request for a loop nest, outermost first
          (e.g. [[4; 1]]); the innermost entry is the kernel II, each
          enclosing entry must equal [kernel II x stride] (checked) *)
  nest_mode : Hls_frontend.Desugar.nest_mode;
      (** counted-nest lowering: [`Flatten] (default) or [`Unroll] (the
          1-D baseline that fully unrolls inner loops) *)
  min_latency : int option;
  max_latency : int option;
  sched : Hls_core.Scheduler.options;
  verify : bool;  (** simulate and check equivalence *)
  sim_iters : int;
  seed : int;
  degrade : bool;  (** walk the degradation ladder instead of failing *)
  paranoid : bool;  (** audit every schedule with {!Hls_check.Audit} *)
  feedback : bool;
      (** run the subgraph-extraction feedback loop (schedule → extract →
          re-schedule with hints batched in), serving the best (II, LI,
          area) iteration; no-regress by construction, per-iteration
          stats land in [f_notes] with phase [Feedback] *)
  feedback_iters : int;
      (** schedule calls the feedback loop may spend (default 2) *)
  hints : Hls_feedback.Feedback.Hints.t;
      (** pre-mined hints applied to every schedule call; the DSE engine
          threads its shared cross-point store through here.  An empty
          store leaves the flow byte-identical to the pre-feedback one. *)
}

val default_options : options

type t = {
  f_design : Ast.design;
  f_elab : Elaborate.t;
  f_region : Hls_ir.Region.t;
  f_sched : Hls_core.Scheduler.t;
  f_fold : Hls_core.Pipeline.t;
  f_area : Hls_rtl.Stats.breakdown;
  f_power_mw : float;
  f_equiv : Hls_sim.Equiv.verdict option;
  f_cycles_per_iter : int;  (** steady-state initiation interval *)
  f_delay_ps : float;  (** inverse throughput, II × Tclk (Figs. 10/11 x-axis) *)
  f_clock_ps : float;
  f_tier : tier;  (** which degradation tier served this result *)
  f_notes : Diag.t list;  (** warnings accumulated on the way (degradations) *)
  f_stats : Hls_core.Scheduler.stats;
      (** pass/action/timing-query profiling counters of the schedule that
          served this result (see {!Hls_core.Scheduler.stats}) *)
}

val run : ?options:options -> ?trace:Hls_core.Trace.t -> Ast.design -> (t, Diag.t) result
(** Elaboration is always fresh, so one design value can be explored under
    many configurations.  Never raises; always terminates. *)

val run_exn : ?options:options -> ?trace:Hls_core.Trace.t -> Ast.design -> t

val per_dim_iis : t -> int list
(** Achieved per-dimension IIs (outermost first) when the scheduled
    region is a flattened loop nest; empty otherwise. *)

val summary : t -> string
