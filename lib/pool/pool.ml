(** Persistent domain worker pool with an explicit lifecycle.

    Extracted from the DSE engine (which re-exports it as [Dse.Pool]) so
    lower layers — notably the scheduler's region-parallel SCC analysis —
    can share one pool abstraction without depending on the DSE library.

    Domains survive across jobs, parked on a condition variable while the
    queue is empty.  [shutdown] is a graceful drain — already-queued tasks
    still run, then every domain exits and is joined — so callers (the DSE
    engine's [at_exit] hook, the compile daemon's SIGTERM drain) never leak
    parked domains.  All state is guarded by one mutex; the lock hand-offs
    give the usual happens-before edges, so a task's writes are published
    to whoever observes its completion via [wait]. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (** signalled on submit and on shutdown *)
  drained : Condition.t;  (** signalled when queue empties and no task runs *)
  queue : (unit -> unit) Queue.t;
  mutable domains : unit Domain.t list;
  stop : bool Atomic.t;
      (** the shutdown latch: atomic so {!shutdown} can decide whether
          it is the first caller without taking the mutex — repeat
          calls (a signal-context drain racing an [at_exit] hook)
          return immediately and never double-join a domain *)
  mutable running : int;  (** tasks currently executing *)
}

let rec worker t =
  Mutex.lock t.mutex;
  while (not (Atomic.get t.stop)) && Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stop && drained *)
  else begin
    let task = Queue.pop t.queue in
    t.running <- t.running + 1;
    Mutex.unlock t.mutex;
    (try task () with _ -> ());
    Mutex.lock t.mutex;
    t.running <- t.running - 1;
    if t.running = 0 && Queue.is_empty t.queue then Condition.broadcast t.drained;
    Mutex.unlock t.mutex;
    worker t
  end

let spawn_locked t k =
  for _ = List.length t.domains + 1 to k do
    t.domains <- Domain.spawn (fun () -> worker t) :: t.domains
  done

let create ?(workers = 1) () =
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      domains = [];
      stop = Atomic.make false;
      running = 0;
    }
  in
  Mutex.lock t.mutex;
  spawn_locked t (max 1 workers);
  Mutex.unlock t.mutex;
  t

let ensure t k =
  Mutex.lock t.mutex;
  if not (Atomic.get t.stop) then spawn_locked t k;
  Mutex.unlock t.mutex

let size t =
  Mutex.lock t.mutex;
  let n = List.length t.domains in
  Mutex.unlock t.mutex;
  n

let alive t = not (Atomic.get t.stop)

let submit t task =
  Mutex.lock t.mutex;
  let accepted = not (Atomic.get t.stop) in
  if accepted then begin
    Queue.push task t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  accepted

let wait t =
  Mutex.lock t.mutex;
  while t.running > 0 || not (Queue.is_empty t.queue) do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  (* the exchange makes every call after the first a lock-free no-op:
     idempotent, and safe from the shallow context a signal handler
     body runs in (one atomic read-modify-write, no mutex, no join).
     Only the winning caller drains and joins. *)
  if not (Atomic.exchange t.stop true) then begin
    Mutex.lock t.mutex;
    (* claim the domain list under the lock so nothing else (ensure,
       a racing spawn) can see or grow it once shutdown has begun *)
    let doomed = t.domains in
    t.domains <- [];
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join doomed
  end
