(** Persistent domain worker pool with an explicit lifecycle: domains
    survive across jobs, parked while the queue is empty.  Shared by the
    DSE engine (as [Dse.Pool]), the compile daemon, and the scheduler's
    region-parallel SCC analysis. *)

type t

val create : ?workers:int -> unit -> t
(** Spawn a pool of [workers] (≥ 1, default 1) resident domains. *)

val ensure : t -> int -> unit
(** Grow the pool to at least this many domains (never shrinks; no-op
    after {!shutdown}). *)

val size : t -> int
(** Resident domain count (0 after {!shutdown}). *)

val alive : t -> bool
(** [false] once {!shutdown} has begun; {!submit} then refuses work. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a task; returns [false] (task dropped) after {!shutdown}.
    A task that raises is swallowed — wrap tasks that must report. *)

val wait : t -> unit
(** Block until the queue is empty and no task is executing. *)

val shutdown : t -> unit
(** Graceful drain: stop admitting, run every already-queued task,
    then join all domains.  Idempotent via an atomic latch: exactly
    one caller (the first) drains and joins; every other call — a
    server drain racing an [at_exit] hook, a repeat from a signal
    handler body — returns immediately without touching the mutex,
    so no domain is ever joined twice. *)
