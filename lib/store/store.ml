(** On-disk content-addressed blob store.  See the interface for the
    crash-safety contract; the layout:

    {v
      root/VERSION            "hlsc-store <layout_version>\n"
      root/objects/ab/abcdef… one file per entry, name = MD5(key) hex
      root/tmp/               private write staging (wiped at open)
      root/quarantine/        corrupt entries, renamed aside on detection
      root/index.json         informational summary (flush_index)
    v}

    Entry bytes: ["hlsc-art <v>\n<md5-hex-of-payload>\n<len>\n"] followed
    by exactly [len] payload bytes. *)

let layout_version = 1

type stats = {
  st_entries : int;
  st_bytes : int;
  st_quarantined : int;
  st_puts : int;
  st_hits : int;
  st_misses : int;
}

(* cached directory-scan totals, so [stats] is not an O(entries) walk on
   every call (the daemon answers stats/health from monitoring pollers) *)
type scan_cache = {
  sc_at : float;  (** when the scan ran *)
  mutable sc_entries : int;
  mutable sc_bytes : int;  (** entry *file* bytes (header + payload) *)
  mutable sc_quarantined : int;
}

type t = {
  root : string;
  mutable tmp_seq : int;
  mutable n_puts : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_quarantined : int;  (** quarantines performed by this handle *)
  mutable scan : scan_cache option;
}

let ( // ) = Filename.concat
let objects t = t.root // "objects"
let tmp_dir t = t.root // "tmp"
let quarantine_dir t = t.root // "quarantine"
let version_file root = root // "VERSION"
let fresh_handle root =
  { root; tmp_seq = 0; n_puts = 0; n_hits = 0; n_misses = 0; n_quarantined = 0; scan = None }
let version_stamp = Printf.sprintf "hlsc-store %d\n" layout_version

let hashed_name key = Digest.to_hex (Digest.string key)
let path_of_hash t h = objects t // String.sub h 0 2 // h
let path_of_key t key = path_of_hash t (hashed_name key)

let mkdir_p path =
  let rec go p =
    if not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let list_dir path = try Array.to_list (Sys.readdir path) with Sys_error _ -> []

(* ------------------------------------------------------------------ *)
(* Entry codec *)

let entry_magic = Printf.sprintf "hlsc-art %d" layout_version

let encode_entry payload =
  Printf.sprintf "%s\n%s\n%d\n%s" entry_magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

(* [None] = corrupt (bad magic, torn header, short payload, checksum
   mismatch) — the caller quarantines *)
let decode_entry bytes =
  let line_end from = String.index_from_opt bytes from '\n' in
  match line_end 0 with
  | None -> None
  | Some l1 when String.sub bytes 0 l1 <> entry_magic -> None
  | Some l1 -> (
      match line_end (l1 + 1) with
      | None -> None
      | Some l2 -> (
          let digest = String.sub bytes (l1 + 1) (l2 - l1 - 1) in
          match line_end (l2 + 1) with
          | None -> None
          | Some l3 -> (
              match int_of_string_opt (String.sub bytes (l2 + 1) (l3 - l2 - 1)) with
              | None -> None
              | Some len ->
                  if String.length bytes - l3 - 1 <> len then None
                  else
                    let payload = String.sub bytes (l3 + 1) len in
                    if Digest.to_hex (Digest.string payload) <> digest then None
                    else Some payload)))

(* ------------------------------------------------------------------ *)
(* Quarantine *)

let quarantine t path =
  t.n_quarantined <- t.n_quarantined + 1;
  let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  let dst =
    Printf.sprintf "%s.%d.%d"
      (quarantine_dir t // Filename.basename path)
      (Unix.getpid ()) t.n_quarantined
  in
  let renamed =
    try
      Sys.rename path dst;
      true
    with Sys_error _ ->
      (* a concurrent handle beat us to it *)
      (try Sys.remove path with Sys_error _ -> ());
      false
  in
  match t.scan with
  | None -> ()
  | Some sc ->
      sc.sc_entries <- sc.sc_entries - 1;
      sc.sc_bytes <- sc.sc_bytes - size;
      if renamed then sc.sc_quarantined <- sc.sc_quarantined + 1

(* ------------------------------------------------------------------ *)
(* Open + recovery scan *)

let iter_entries t f =
  List.iter
    (fun shard ->
      let sdir = objects t // shard in
      if try Sys.is_directory sdir with Sys_error _ -> false then
        List.iter (fun name -> f (sdir // name)) (list_dir sdir))
    (list_dir (objects t))

let recovery_scan t =
  (* a crash can only leave garbage in tmp/ (unpublished writes) or a
     corrupt published entry (torn by the filesystem, or chaos) *)
  List.iter
    (fun name -> try Sys.remove (tmp_dir t // name) with Sys_error _ -> ())
    (list_dir (tmp_dir t));
  iter_entries t (fun path ->
      match decode_entry (read_file path) with
      | Some _ -> ()
      | None | (exception Sys_error _) -> quarantine t path)

let open_ ?(scan = true) root =
  try
    let t = fresh_handle root in
    mkdir_p (objects t);
    mkdir_p (tmp_dir t);
    mkdir_p (quarantine_dir t);
    let vf = version_file root in
    if Sys.file_exists vf then begin
      let stamp = read_file vf in
      if stamp <> version_stamp then
        Error
          (Printf.sprintf "store %s has incompatible layout %S (this build writes %S)" root
             (String.trim stamp) (String.trim version_stamp))
      else begin
        if scan then recovery_scan t;
        Ok t
      end
    end
    else begin
      let oc = open_out_bin vf in
      output_string oc version_stamp;
      close_out oc;
      Ok t
    end
  with
  | Sys_error m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let dir t = t.root

(* ------------------------------------------------------------------ *)
(* Read / write *)

let put t key payload =
  try
    t.tmp_seq <- t.tmp_seq + 1;
    let tmp = tmp_dir t // Printf.sprintf "put.%d.%d" (Unix.getpid ()) t.tmp_seq in
    let entry = encode_entry payload in
    let oc = open_out_bin tmp in
    output_string oc entry;
    close_out oc;
    let dst = path_of_key t key in
    mkdir_p (Filename.dirname dst);
    let old_size =
      match Unix.stat dst with
      | s -> Some s.Unix.st_size
      | exception Unix.Unix_error _ -> None
    in
    Sys.rename tmp dst;
    t.n_puts <- t.n_puts + 1;
    (match t.scan with
    | None -> ()
    | Some sc -> (
        match old_size with
        | None ->
            sc.sc_entries <- sc.sc_entries + 1;
            sc.sc_bytes <- sc.sc_bytes + String.length entry
        | Some old -> sc.sc_bytes <- sc.sc_bytes - old + String.length entry));
    Ok ()
  with Sys_error m -> Error m

let find t key =
  let path = path_of_key t key in
  match read_file path with
  | exception Sys_error _ ->
      t.n_misses <- t.n_misses + 1;
      None
  | bytes -> (
      match decode_entry bytes with
      | Some payload ->
          t.n_hits <- t.n_hits + 1;
          Some payload
      | None ->
          quarantine t path;
          t.n_misses <- t.n_misses + 1;
          None)

let mem t key = Sys.file_exists (path_of_key t key)

let keys t =
  let acc = ref [] in
  iter_entries t (fun path -> acc := Filename.basename path :: !acc);
  List.sort compare !acc

let scan_totals t =
  let entries = ref 0 and bytes = ref 0 in
  iter_entries t (fun path ->
      incr entries;
      bytes := !bytes + (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0));
  (!entries, !bytes)

let scan_ttl_s = 2.0

(* The scan totals are cached: mutations through *this* handle keep the
   cached numbers exact incrementally ([put]/[quarantine] above), and a
   rescan no more often than [max_age] picks up other processes' writes.
   This keeps a monitoring poller hammering stats/health from costing an
   O(entries) tree walk per request. *)
let refresh_scan ~max_age t =
  let now = Unix.gettimeofday () in
  match t.scan with
  | Some sc when now -. sc.sc_at <= max_age -> sc
  | _ ->
      let entries, bytes = scan_totals t in
      let sc =
        {
          sc_at = now;
          sc_entries = entries;
          sc_bytes = bytes;
          sc_quarantined = List.length (list_dir (quarantine_dir t));
        }
      in
      t.scan <- Some sc;
      sc

let stats ?(max_age = scan_ttl_s) t =
  let sc = refresh_scan ~max_age t in
  {
    st_entries = sc.sc_entries;
    st_bytes = sc.sc_bytes;
    st_quarantined = sc.sc_quarantined;
    st_puts = t.n_puts;
    st_hits = t.n_hits;
    st_misses = t.n_misses;
  }

(* ------------------------------------------------------------------ *)
(* Index *)

let flush_index t =
  try
    (* the index is a durable snapshot: bypass the scan cache *)
    let s = stats ~max_age:0.0 t in
    let names = keys t in
    let buf = Buffer.create 256 in
    Printf.bprintf buf
      {|{"layout_version":%d,"entries":%d,"payload_file_bytes":%d,"quarantined":%d,"keys":[|}
      layout_version s.st_entries s.st_bytes s.st_quarantined;
    List.iteri
      (fun i n -> Printf.bprintf buf "%s\"%s\"" (if i = 0 then "" else ",") n)
      names;
    Buffer.add_string buf "]}\n";
    t.tmp_seq <- t.tmp_seq + 1;
    let tmp = tmp_dir t // Printf.sprintf "idx.%d.%d" (Unix.getpid ()) t.tmp_seq in
    let oc = open_out_bin tmp in
    Buffer.output_buffer oc buf;
    close_out oc;
    Sys.rename tmp (t.root // "index.json");
    Ok ()
  with Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Chaos hook *)

let corrupt t key how =
  let path = path_of_key t key in
  match read_file path with
  | exception Sys_error _ -> false
  | bytes -> (
      let damaged =
        match how with
        | `Truncate -> String.sub bytes 0 (String.length bytes / 2)
        | `Flip ->
            let b = Bytes.of_string bytes in
            let i = Bytes.length b - 1 in
            (* flip a payload byte (the last one), not the header *)
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
            Bytes.to_string b
      in
      try
        let oc = open_out_bin path in
        output_string oc damaged;
        close_out oc;
        true
      with Sys_error _ -> false)
