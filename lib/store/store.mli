(** Crash-safe on-disk content-addressed blob store.

    The compile-service daemon persists rendered compile artifacts here,
    keyed by the two-level design fingerprint, so warm state survives
    daemon restarts and is shared by every worker process.  The store is
    deliberately generic: keys are arbitrary strings (hashed to file
    names), payloads are opaque bytes — serialization belongs to the
    caller.

    Crash-only discipline:
    - every write lands in a private temp file and is published with an
      atomic [rename], so a crash mid-write can never leave a torn entry
      under a live name;
    - every entry carries a header with a layout magic, an MD5 checksum
      and the payload length; a read that fails any of the three moves
      the file into [quarantine/] (never served, kept for post-mortem)
      and reports a miss;
    - the root directory is version-stamped ([VERSION]); opening a store
      written by an incompatible layout fails loudly instead of
      misreading it;
    - {!open_} runs a recovery scan: leftover temp files are deleted and
      (by default) every entry is checksum-verified, quarantining any
      that a crash or bit-rot corrupted.

    Concurrency: many processes may share one store.  Writers never
    collide (unique temp names, atomic rename, last-writer-wins on
    identical keys); readers verify checksums so a reader can never
    observe a torn entry. *)

type t

val layout_version : int
(** Bumped on any incompatible change to the on-disk layout. *)

(** Counters of one handle (not global across processes). *)
type stats = {
  st_entries : int;  (** entries on disk (cached directory scan) *)
  st_bytes : int;  (** entry file bytes of those entries *)
  st_quarantined : int;  (** files in [quarantine/] *)
  st_puts : int;  (** successful {!put}s through this handle *)
  st_hits : int;  (** verified {!find} hits through this handle *)
  st_misses : int;  (** {!find} misses (absent or quarantined) *)
}

val open_ : ?scan:bool -> string -> (t, string) result
(** Open (creating if needed) the store rooted at a directory.  Stamps or
    checks [VERSION], deletes leftover temp files, and — unless
    [~scan:false] — verifies every entry's checksum, quarantining corrupt
    ones.  Fails on a version mismatch or an unusable directory. *)

val dir : t -> string

val put : t -> string -> string -> (unit, string) result
(** [put t key payload] durably publishes [payload] under [key] via the
    temp-file + atomic-rename protocol, replacing any previous entry. *)

val find : t -> string -> string option
(** Verified read: [None] when absent, or when the entry failed its
    magic/length/checksum check — in which case the file has been moved
    to [quarantine/] so it is never served again. *)

val mem : t -> string -> bool
(** Existence check (no verification, no quarantine). *)

val keys : t -> string list
(** Hashed entry names currently on disk, sorted (a directory scan). *)

val stats : ?max_age:float -> t -> stats
(** Handle counters plus directory-scan totals.  The scan is cached:
    mutations through this handle adjust the cached totals exactly, and
    the tree is rescanned only when the cache is older than [max_age]
    (default 2 s) — so hammering [stats] never costs an O(entries) walk
    per call, at the price of seeing *other* processes' writes with up
    to [max_age] of lag.  Pass [~max_age:0.0] to force a fresh scan. *)

val flush_index : t -> (unit, string) result
(** Rescan the store and atomically write [index.json] — a one-object
    summary (layout version, entry count/bytes, quarantine count, entry
    list) — so operators and the next daemon boot can see what survived
    without re-hashing anything.  The index is informational: recovery
    always trusts the entries themselves. *)

val corrupt : t -> string -> [ `Truncate | `Flip ] -> bool
(** Chaos/test hook: damage the stored file for [key] in place — truncate
    it to half, or flip one payload byte.  Returns [false] when the key
    has no entry.  Exists so fault-injection harnesses can prove that
    corrupt entries are quarantined, never served. *)
