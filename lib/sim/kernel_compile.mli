(** One-time compilation of a folded pipeline into a specialized simulator.

    [compile] resolves everything the {!Kernel_sim} interpreter re-derives
    per cycle — cell topological orders, in-edge lists, guard atoms,
    result widths, loop-carried distances — once, into per-op closures
    over a dense op-id-indexed value arena (a ring of
    [stages + max_distance + 1] iteration contexts with iteration-stamp
    validity).  [run] then steps the same controller as the interpreter:
    kernel-state counter, stage-validity shift register, external +
    design stall freezing, data-dependent exit with squash.

    A plan is reusable across runs (the arena resets per run) but is not
    thread-safe and not reentrant: one [run] at a time per plan. *)

type output_event = { k_port : string; k_iter : int; k_cycle : int; k_value : int }

type result = {
  k_outputs : output_event list;
  k_iters : int;  (** committed iterations *)
  k_cycles : int;  (** cycles stepped, stalls and drain included *)
  k_stall_cycles : int;
  k_squashed : int;  (** iterations issued past the exit and discarded *)
}

exception Watchdog of Hls_diag.Diag.t
(** Raised ([watchdog_exceeded]) when the pipeline is still active after
    the cycle cap — e.g. a design stall condition that never releases. *)

type plan

val compile : Hls_frontend.Elaborate.t -> Hls_core.Scheduler.t -> Hls_core.Pipeline.t -> plan

val run :
  ?funcs:(string -> int list -> int) ->
  ?max_iters:int ->
  ?max_cycles:int ->
  ?stall_pattern:(int -> bool) ->
  plan ->
  Stimulus.t ->
  result
(** Identical semantics to {!Kernel_sim.run}.  [max_cycles] defaults to
    {!default_max_cycles}; when exceeded while iterations are still in
    flight, raises {!Watchdog}. *)

val ii : plan -> int
val stages : plan -> int

val default_max_cycles : ii:int -> stages:int -> n_iters:int -> int
(** [max 100_000 ((n_iters + stages + 8) * ii * 8)]: generous slack over
    the stall-free cycle count so bounded-duty stall patterns never trip. *)

val watchdog_diag : engine:string -> cap:int -> Hls_diag.Diag.t
(** The diagnostic carried by {!Watchdog} (shared by both engines). *)

val cell_topo : Hls_ir.Dfg.t -> Hls_core.Pipeline.t -> state:int -> stage:int -> int list
(** Topologically ordered ops of one kernel cell — shared with the
    interpreter so both engines execute cells in the same order. *)

val pre_topo : Hls_ir.Dfg.t -> int list -> int list
(** Pre-region members in dependency order over distance-0 edges. *)
