(** Golden behavioural interpreter over the (lowered) AST.

    Executes the design's thread body directly: the pre-loop statements,
    the main do/while loop one iteration at a time, and the post-loop
    statements.  Width semantics mirror elaboration exactly — every
    operation produces {!Hls_ir.Opkind.result_width} bits and assignments
    truncate to the variable's declared width — so the interpreter is a
    bit-accurate reference for the scheduled design.

    Port sampling follows the per-iteration convention of the frontend:
    iteration [i] of the main loop reads sample [i] of every input port it
    touches; pre-loop reads sample 0.

    Black-box [Call] operations are resolved through a user-supplied
    function table; the default is a deterministic hash so that equivalence
    checks remain meaningful without a real IP model. *)

open Hls_ir
open Hls_frontend

type output_event = { o_port : string; o_iter : int; o_value : int }

type result = {
  r_outputs : output_event list;  (** in program order *)
  r_iters : int;  (** main-loop iterations executed *)
  r_env : (string * int) list;  (** final variable values *)
}

let default_fun name args =
  List.fold_left (fun acc a -> (acc * 31) + a) (Hashtbl.hash name land 0xFFFF) args land 0xFFFFF

type ctx = {
  stim : Stimulus.t;
  funcs : string -> int list -> int;
  widths : (string, int) Hashtbl.t;
  env : (string, int) Hashtbl.t;
  mutable iter : int;
  mutable outputs : output_event list;
  design : Ast.design;
}

let trunc = Width.truncate

let rec eval ctx (e : Ast.expr) : int * int =
  (* returns (value, width) *)
  match e with
  | Ast.Int n -> (n, Width.bits_for_signed n)
  | Ast.Int_w (n, w) -> (trunc ~width:w n, w)
  | Ast.Var v -> (
      match Hashtbl.find_opt ctx.env v with
      | Some x -> (x, Option.value (Hashtbl.find_opt ctx.widths v) ~default:32)
      | None -> invalid_arg ("Behav.eval: unassigned variable " ^ v))
  | Ast.Port p ->
      let w =
        match List.assoc_opt p ctx.design.Ast.d_ins with
        | Some w -> w
        | None -> invalid_arg ("Behav.eval: unknown port " ^ p)
      in
      (trunc ~width:w (Stimulus.value ctx.stim ~port:p ~iter:ctx.iter), w)
  | Ast.Bin (op, a, b) ->
      let va, wa = eval ctx a and vb, wb = eval ctx b in
      let w = Opkind.result_width (Opkind.Bin op) [ wa; wb ] in
      let v =
        match Opkind.eval_pure (Opkind.Bin op) [ va; vb ] with
        | Some v -> v
        | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Un (op, a) ->
      let va, wa = eval ctx a in
      let w = Opkind.result_width (Opkind.Un op) [ wa ] in
      let v =
        match Opkind.eval_pure (Opkind.Un op) [ va ] with Some v -> v | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Cond (c, a, b) ->
      let vc, _ = eval ctx c in
      (* both branches evaluate in hardware; values are pure so evaluating
         lazily here is equivalent *)
      let va, wa = eval ctx a and vb, wb = eval ctx b in
      let w = max wa wb in
      (trunc ~width:w (if vc <> 0 then va else vb), w)
  | Ast.Slice (a, hi, lo) ->
      let va, _ = eval ctx a in
      let w = Width.clamp (hi - lo + 1) in
      let v =
        match Opkind.eval_pure (Opkind.Slice (hi, lo)) [ va ] with
        | Some v -> v
        | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Call (f, args, w) ->
      let vs = List.map (fun a -> fst (eval ctx a)) args in
      (trunc ~width:w (ctx.funcs f vs), w)

let assign ctx v value ~width =
  let w =
    match Hashtbl.find_opt ctx.widths v with
    | Some w -> w
    | None ->
        Hashtbl.replace ctx.widths v width;
        width
  in
  Hashtbl.replace ctx.env v (trunc ~width:w value)

let rec exec_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, e) ->
      let value, w = eval ctx e in
      assign ctx v value ~width:w
  | Ast.Write (p, e) ->
      let value, _ = eval ctx e in
      let w =
        match List.assoc_opt p ctx.design.Ast.d_outs with
        | Some w -> w
        | None -> invalid_arg ("Behav: unknown output port " ^ p)
      in
      ctx.outputs <-
        { o_port = p; o_iter = ctx.iter; o_value = trunc ~width:w value } :: ctx.outputs
  | Ast.Wait | Ast.Stall_until _ -> ()
  | Ast.If (c, t, f) ->
      let vc, _ = eval ctx c in
      List.iter (exec_stmt ctx) (if vc <> 0 then t else f)
  | Ast.Do_while _ | Ast.While _ | Ast.For _ ->
      invalid_arg "Behav.exec_stmt: unexpected loop (use Behav.run on the design)"

(* ------------------------------------------------------------------ *)
(* Compiled fast path for the main loop.

   The loop body dominates golden-trace generation on long stimuli, and
   its widths are almost always statically determinable: widths are
   sticky (fixed at a variable's first assignment) and every width rule
   depends only on operand widths, so as long as each undeclared
   variable's first assignment sits outside conditional branches the
   whole body compiles to closures over a dense variable-slot array —
   no hashtable lookups, no width recomputation per iteration.  Any
   construct that defeats static widths (first assignment inside an
   [If], nested loops) falls back to the tree-walker above. *)

exception Fallback

type comp = {
  c_widths : (string, int) Hashtbl.t;  (** static widths, seeded from ctx *)
  c_slot : (string, int) Hashtbl.t;
  mutable c_nslots : int;
  c_stim : Stimulus.t;
  c_funcs : string -> int list -> int;
  c_design : Ast.design;
  c_iter : int ref;
}

let slot_of c v =
  match Hashtbl.find_opt c.c_slot v with
  | Some i -> i
  | None ->
      let i = c.c_nslots in
      c.c_nslots <- i + 1;
      Hashtbl.replace c.c_slot v i;
      i

(* compile an expression to (closure, static width) over the slot arrays *)
let rec cexpr c ~(slots : int array ref) ~(live : bool array ref) (e : Ast.expr) :
    (unit -> int) * int =
  let sub e = cexpr c ~slots ~live e in
  match e with
  | Ast.Int n -> ((fun () -> n), Width.bits_for_signed n)
  | Ast.Int_w (n, w) ->
      let v = trunc ~width:w n in
      ((fun () -> v), w)
  | Ast.Var v -> (
      match Hashtbl.find_opt c.c_widths v with
      | None -> raise Fallback (* width unknown statically: first use precedes assignment *)
      | Some w ->
          let i = slot_of c v in
          ( (fun () ->
              if not !live.(i) then invalid_arg ("Behav.eval: unassigned variable " ^ v);
              !slots.(i)),
            w ))
  | Ast.Port p ->
      (* unknown ports fall back so the raise happens (or not) exactly
         where the tree-walker would raise it *)
      let w =
        match List.assoc_opt p c.c_design.Ast.d_ins with
        | Some w -> w
        | None -> raise Fallback
      in
      let samples =
        match List.assoc_opt p c.c_stim.Stimulus.samples with
        | Some a -> a
        | None -> raise Fallback
      in
      let n = Array.length samples in
      let iter = c.c_iter in
      ( (fun () ->
          let i = !iter in
          trunc ~width:w (if i < 0 || i >= n then 0 else samples.(i))),
        w )
  | Ast.Bin (op, a, b) ->
      let fa, wa = sub a and fb, wb = sub b in
      let w = Opkind.result_width (Opkind.Bin op) [ wa; wb ] in
      let k = Opkind.Bin op in
      ( (fun () ->
          match Opkind.eval_pure k [ fa (); fb () ] with
          | Some v -> trunc ~width:w v
          | None -> assert false),
        w )
  | Ast.Un (op, a) ->
      let fa, wa = sub a in
      let w = Opkind.result_width (Opkind.Un op) [ wa ] in
      let k = Opkind.Un op in
      ( (fun () ->
          match Opkind.eval_pure k [ fa () ] with
          | Some v -> trunc ~width:w v
          | None -> assert false),
        w )
  | Ast.Cond (cnd, a, b) ->
      let fc, _ = sub cnd in
      let fa, wa = sub a and fb, wb = sub b in
      let w = max wa wb in
      (* both branches evaluate, as in the tree-walker (hardware computes
         both; visible only through impure [funcs]) *)
      ( (fun () ->
          let vc = fc () in
          let va = fa () and vb = fb () in
          trunc ~width:w (if vc <> 0 then va else vb)),
        w )
  | Ast.Slice (a, hi, lo) ->
      let fa, _ = sub a in
      let w = Width.clamp (hi - lo + 1) in
      let k = Opkind.Slice (hi, lo) in
      ( (fun () ->
          match Opkind.eval_pure k [ fa () ] with
          | Some v -> trunc ~width:w v
          | None -> assert false),
        w )
  | Ast.Call (f, args, w) ->
      let fs = List.map (fun a -> fst (sub a)) args in
      let funcs = c.c_funcs in
      ((fun () -> trunc ~width:w (funcs f (List.map (fun g -> g ()) fs))), w)

(* compile a statement list; [conditional] guards the sticky-width rule *)
let rec cstmts c ~slots ~live ~conditional ~(emit : output_event -> unit) stmts :
    (unit -> unit) array =
  let cstmt (s : Ast.stmt) : unit -> unit =
    match s with
    | Ast.Assign (v, e) ->
        let f, we = cexpr c ~slots ~live e in
        let w =
          match Hashtbl.find_opt c.c_widths v with
          | Some w -> w
          | None ->
              (* first assignment fixes the width; inside a conditional the
                 tree-walker's choice depends on the branch taken *)
              if conditional then raise Fallback;
              Hashtbl.replace c.c_widths v we;
              we
        in
        let i = slot_of c v in
        fun () ->
          let value = trunc ~width:w (f ()) in
          !slots.(i) <- value;
          !live.(i) <- true
    | Ast.Write (p, e) ->
        let f, _ = cexpr c ~slots ~live e in
        let w =
          match List.assoc_opt p c.c_design.Ast.d_outs with
          | Some w -> w
          | None -> raise Fallback
        in
        let iter = c.c_iter in
        fun () -> emit { o_port = p; o_iter = !iter; o_value = trunc ~width:w (f ()) }
    | Ast.Wait | Ast.Stall_until _ -> fun () -> ()
    | Ast.If (cnd, t, f) ->
        let fc, _ = cexpr c ~slots ~live cnd in
        let ft = cstmts c ~slots ~live ~conditional:true ~emit t in
        let ff = cstmts c ~slots ~live ~conditional:true ~emit f in
        fun () -> Array.iter (fun g -> g ()) (if fc () <> 0 then ft else ff)
    | Ast.Do_while _ | Ast.While _ | Ast.For _ -> raise Fallback
  in
  Array.of_list (List.map cstmt stmts)

(** Execute one outer round of the design: pre statements, the main loop
    (bounded by [stim.n_iters]), post statements. *)
let run ?(funcs = default_fun) ?nest (design : Ast.design) (stim : Stimulus.t) : result =
  let design = Desugar.design ?nest design in
  let ctx =
    {
      stim;
      funcs;
      widths = Hashtbl.create 16;
      env = Hashtbl.create 16;
      iter = 0;
      outputs = [];
      design;
    }
  in
  List.iter (fun (v, w) -> Hashtbl.replace ctx.widths v w) design.Ast.d_vars;
  let rec split acc = function
    | [] -> (List.rev acc, None, [])
    | Ast.Do_while (b, c, a) :: rest -> (List.rev acc, Some (b, c, a), rest)
    | s :: rest -> split (s :: acc) rest
  in
  let pre, main_loop, post = split [] design.Ast.d_body in
  List.iter (exec_stmt ctx) pre;
  let iters = ref 0 in
  let run_tree body cond =
    let continue_ = ref true in
    while !continue_ && ctx.iter < stim.Stimulus.n_iters do
      List.iter (exec_stmt ctx) body;
      incr iters;
      let vc, _ = eval ctx cond in
      if vc = 0 then continue_ := false else ctx.iter <- ctx.iter + 1
    done
  in
  (match main_loop with
  | None -> ()
  | Some (body, cond, _) -> (
      (* compile the loop body once; widths must be fully static *)
      let c =
        {
          c_widths = Hashtbl.copy ctx.widths;
          c_slot = Hashtbl.create 16;
          c_nslots = 0;
          c_stim = stim;
          c_funcs = funcs;
          c_design = design;
          c_iter = ref ctx.iter;
        }
      in
      let slots = ref [||] and live = ref [||] in
      let out = ref [] in
      let emit ev = out := ev :: !out in
      match
        let fbody = cstmts c ~slots ~live ~conditional:false ~emit body in
        let fcond = fst (cexpr c ~slots ~live cond) in
        (fbody, fcond)
      with
      | exception Fallback -> run_tree body cond
      | fbody, fcond ->
          slots := Array.make (max 1 c.c_nslots) 0;
          live := Array.make (max 1 c.c_nslots) false;
          Hashtbl.iter
            (fun v i ->
              match Hashtbl.find_opt ctx.env v with
              | Some x ->
                  !slots.(i) <- x;
                  !live.(i) <- true
              | None -> ())
            c.c_slot;
          let n_iters = stim.Stimulus.n_iters in
          let iter = c.c_iter in
          let continue_ = ref true in
          while !continue_ && !iter < n_iters do
            Array.iter (fun f -> f ()) fbody;
            incr iters;
            if fcond () = 0 then continue_ := false else incr iter
          done;
          ctx.iter <- !iter;
          (* publish the compiled state back into the interpreter context
             for the post statements and the final environment *)
          Hashtbl.iter
            (fun v i -> if !live.(i) then Hashtbl.replace ctx.env v !slots.(i))
            c.c_slot;
          Hashtbl.iter (fun v w -> Hashtbl.replace ctx.widths v w) c.c_widths;
          ctx.outputs <- !out @ ctx.outputs));
  List.iter (exec_stmt ctx) post;
  {
    r_outputs = List.rev ctx.outputs;
    r_iters = !iters;
    r_env = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.env [] |> List.sort compare;
  }

(** Outputs of one port, in emission order. *)
let port_values (r : result) port =
  List.filter_map (fun o -> if o.o_port = port then Some o.o_value else None) r.r_outputs
