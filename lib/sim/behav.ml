(** Golden behavioural interpreter over the (lowered) AST.

    Executes the design's thread body directly: the pre-loop statements,
    the main do/while loop one iteration at a time, and the post-loop
    statements.  Width semantics mirror elaboration exactly — every
    operation produces {!Hls_ir.Opkind.result_width} bits and assignments
    truncate to the variable's declared width — so the interpreter is a
    bit-accurate reference for the scheduled design.

    Port sampling follows the per-iteration convention of the frontend:
    iteration [i] of the main loop reads sample [i] of every input port it
    touches; pre-loop reads sample 0.

    Black-box [Call] operations are resolved through a user-supplied
    function table; the default is a deterministic hash so that equivalence
    checks remain meaningful without a real IP model. *)

open Hls_ir
open Hls_frontend

type output_event = { o_port : string; o_iter : int; o_value : int }

type result = {
  r_outputs : output_event list;  (** in program order *)
  r_iters : int;  (** main-loop iterations executed *)
  r_env : (string * int) list;  (** final variable values *)
}

let default_fun name args =
  List.fold_left (fun acc a -> (acc * 31) + a) (Hashtbl.hash name land 0xFFFF) args land 0xFFFFF

type ctx = {
  stim : Stimulus.t;
  funcs : string -> int list -> int;
  widths : (string, int) Hashtbl.t;
  env : (string, int) Hashtbl.t;
  mutable iter : int;
  mutable outputs : output_event list;
  design : Ast.design;
}

let trunc = Width.truncate

let rec eval ctx (e : Ast.expr) : int * int =
  (* returns (value, width) *)
  match e with
  | Ast.Int n -> (n, Width.bits_for_signed n)
  | Ast.Int_w (n, w) -> (trunc ~width:w n, w)
  | Ast.Var v -> (
      match Hashtbl.find_opt ctx.env v with
      | Some x -> (x, Option.value (Hashtbl.find_opt ctx.widths v) ~default:32)
      | None -> invalid_arg ("Behav.eval: unassigned variable " ^ v))
  | Ast.Port p ->
      let w =
        match List.assoc_opt p ctx.design.Ast.d_ins with
        | Some w -> w
        | None -> invalid_arg ("Behav.eval: unknown port " ^ p)
      in
      (trunc ~width:w (Stimulus.value ctx.stim ~port:p ~iter:ctx.iter), w)
  | Ast.Bin (op, a, b) ->
      let va, wa = eval ctx a and vb, wb = eval ctx b in
      let w = Opkind.result_width (Opkind.Bin op) [ wa; wb ] in
      let v =
        match Opkind.eval_pure (Opkind.Bin op) [ va; vb ] with
        | Some v -> v
        | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Un (op, a) ->
      let va, wa = eval ctx a in
      let w = Opkind.result_width (Opkind.Un op) [ wa ] in
      let v =
        match Opkind.eval_pure (Opkind.Un op) [ va ] with Some v -> v | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Cond (c, a, b) ->
      let vc, _ = eval ctx c in
      (* both branches evaluate in hardware; values are pure so evaluating
         lazily here is equivalent *)
      let va, wa = eval ctx a and vb, wb = eval ctx b in
      let w = max wa wb in
      (trunc ~width:w (if vc <> 0 then va else vb), w)
  | Ast.Slice (a, hi, lo) ->
      let va, _ = eval ctx a in
      let w = Width.clamp (hi - lo + 1) in
      let v =
        match Opkind.eval_pure (Opkind.Slice (hi, lo)) [ va ] with
        | Some v -> v
        | None -> assert false
      in
      (trunc ~width:w v, w)
  | Ast.Call (f, args, w) ->
      let vs = List.map (fun a -> fst (eval ctx a)) args in
      (trunc ~width:w (ctx.funcs f vs), w)

let assign ctx v value ~width =
  let w =
    match Hashtbl.find_opt ctx.widths v with
    | Some w -> w
    | None ->
        Hashtbl.replace ctx.widths v width;
        width
  in
  Hashtbl.replace ctx.env v (trunc ~width:w value)

let rec exec_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (v, e) ->
      let value, w = eval ctx e in
      assign ctx v value ~width:w
  | Ast.Write (p, e) ->
      let value, _ = eval ctx e in
      let w =
        match List.assoc_opt p ctx.design.Ast.d_outs with
        | Some w -> w
        | None -> invalid_arg ("Behav: unknown output port " ^ p)
      in
      ctx.outputs <-
        { o_port = p; o_iter = ctx.iter; o_value = trunc ~width:w value } :: ctx.outputs
  | Ast.Wait | Ast.Stall_until _ -> ()
  | Ast.If (c, t, f) ->
      let vc, _ = eval ctx c in
      List.iter (exec_stmt ctx) (if vc <> 0 then t else f)
  | Ast.Do_while _ | Ast.While _ | Ast.For _ ->
      invalid_arg "Behav.exec_stmt: unexpected loop (use Behav.run on the design)"

(** Execute one outer round of the design: pre statements, the main loop
    (bounded by [stim.n_iters]), post statements. *)
let run ?(funcs = default_fun) ?nest (design : Ast.design) (stim : Stimulus.t) : result =
  let design = Desugar.design ?nest design in
  let ctx =
    {
      stim;
      funcs;
      widths = Hashtbl.create 16;
      env = Hashtbl.create 16;
      iter = 0;
      outputs = [];
      design;
    }
  in
  List.iter (fun (v, w) -> Hashtbl.replace ctx.widths v w) design.Ast.d_vars;
  let rec split acc = function
    | [] -> (List.rev acc, None, [])
    | Ast.Do_while (b, c, a) :: rest -> (List.rev acc, Some (b, c, a), rest)
    | s :: rest -> split (s :: acc) rest
  in
  let pre, main_loop, post = split [] design.Ast.d_body in
  List.iter (exec_stmt ctx) pre;
  let iters = ref 0 in
  (match main_loop with
  | None -> ()
  | Some (body, cond, _) ->
      let continue_ = ref true in
      while !continue_ && ctx.iter < stim.Stimulus.n_iters do
        List.iter (exec_stmt ctx) body;
        incr iters;
        let vc, _ = eval ctx cond in
        if vc = 0 then continue_ := false else ctx.iter <- ctx.iter + 1
      done);
  List.iter (exec_stmt ctx) post;
  {
    r_outputs = List.rev ctx.outputs;
    r_iters = !iters;
    r_env = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.env [] |> List.sort compare;
  }

(** Outputs of one port, in emission order. *)
let port_values (r : result) port =
  List.filter_map (fun o -> if o.o_port = port then Some o.o_value else None) r.r_outputs
