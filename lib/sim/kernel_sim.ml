(** Cycle-stepped simulator of the {e folded} pipeline.

    Where {!Schedule_sim} executes the dataflow per iteration and derives
    timing analytically, this simulator steps the generated controller
    clock by clock, exactly as the emitted RTL does:

    - a kernel-state counter cycles through the II states;
    - a stage-validity shift register implements prologue and epilogue
      ("all loop operations are predicated by the corresponding stage
      signals" — Section V);
    - a stall condition freezes the whole pipeline (the paper's "stalling
      loops", re-inserted around the scheduled kernel);
    - a data-dependent exit stops issue and squashes the younger
      iterations in flight, whose port writes never commit.

    Each pipeline stage carries the value context of the iteration
    currently occupying it; loop-carried reads reach the context of the
    iteration [d] issues earlier.

    Two engines share the controller semantics bit-for-bit: the reference
    tree-walking interpreter below ([`Interp]) and the compiled plan of
    {!Kernel_compile} ([`Compiled], the default), which specializes the
    design once into closures over a dense value arena.  Agreement of
    both engines with the behavioural golden model and {!Schedule_sim} is
    asserted across the design × micro-architecture test matrix and by
    the randomized {!Equiv.fuzz} gate. *)

open Hls_ir
open Hls_core
open Hls_frontend

type output_event = Kernel_compile.output_event = {
  k_port : string;
  k_iter : int;
  k_cycle : int;
  k_value : int;
}

type result = Kernel_compile.result = {
  k_outputs : output_event list;
  k_iters : int;  (** committed iterations *)
  k_cycles : int;  (** clock cycles stepped, including stalls and drain *)
  k_stall_cycles : int;
  k_squashed : int;  (** iterations issued past the exit and discarded *)
}

exception Watchdog = Kernel_compile.Watchdog

let trunc = Width.truncate

type ctx = {
  elab : Elaborate.t;
  sched : Scheduler.t;
  fold : Pipeline.t;
  stim : Stimulus.t;
  funcs : string -> int list -> int;
  dfg : Dfg.t;
  pre_values : (int, int) Hashtbl.t;
  history : (int, (int, int) Hashtbl.t) Hashtbl.t;  (** iteration -> values *)
}

let history_lookup ctx iter =
  if iter < 0 then None else Hashtbl.find_opt ctx.history iter

let edge_value ctx ~lookup ~iter (e : Dfg.edge) =
  let from_iter = iter - e.Dfg.distance in
  match lookup from_iter with
  | Some tbl when Hashtbl.mem tbl e.Dfg.src -> Hashtbl.find tbl e.Dfg.src
  | _ -> Option.value (Hashtbl.find_opt ctx.pre_values e.Dfg.src) ~default:0

let guard_true ctx ~values (g : Guard.t) =
  List.for_all
    (fun (a : Guard.atom) ->
      let v =
        match Hashtbl.find_opt values a.Guard.pred with
        | Some v -> v
        | None -> Option.value (Hashtbl.find_opt ctx.pre_values a.Guard.pred) ~default:0
      in
      (v <> 0) = a.Guard.polarity)
    g

(** Evaluate one op into [values].  [lookup] resolves the value table of a
    given iteration: the per-iteration history in the main loop, or a
    constant [pre_values] view for the pre region (where every operand
    resolves against the already-evaluated pre context — the same
    convention {!Schedule_sim} uses). *)
let eval_op ctx ~lookup ~iter ~values (op : Dfg.op) =
  let ins = Dfg.in_edges ctx.dfg op.Dfg.id in
  let arg i = edge_value ctx ~lookup ~iter (List.nth ins i) in
  let args () = List.map (edge_value ctx ~lookup ~iter) ins in
  let v =
    match op.Dfg.kind with
    | Opkind.Read p -> Stimulus.value ctx.stim ~port:p ~iter
    | Opkind.Const n -> n
    | Opkind.Loop_mux -> if iter = 0 then arg 0 else arg 1
    | Opkind.Write _ -> arg 0
    | Opkind.Call c -> ctx.funcs c.Opkind.callee (args ())
    | Opkind.Concat ->
        let a = arg 0 and b = arg 1 in
        let wb = (Dfg.find ctx.dfg (List.nth ins 1).Dfg.src).Dfg.width in
        (a lsl wb) lor (b land ((1 lsl wb) - 1))
    | Opkind.Sext _ -> arg 0
    | k -> (
        match Opkind.eval_pure k (args ()) with
        | Some v -> v
        | None -> invalid_arg ("Kernel_sim: cannot evaluate " ^ Opkind.to_string k))
  in
  Hashtbl.replace values op.Dfg.id (trunc ~width:op.Dfg.width v)

let cell_order ctx ~state ~stage = Kernel_compile.cell_topo ctx.dfg ctx.fold ~state ~stage

(** The reference interpreter: re-derives cell orders per cycle and keeps
    per-iteration hashtable contexts.  Kept as the executable
    specification the compiled engine is diffed against. *)
let run_interp ?(funcs = Behav.default_fun) ?max_iters ?max_cycles
    ?(stall_pattern = fun _ -> true) (elab : Elaborate.t) (sched : Scheduler.t)
    (stim : Stimulus.t) : result =
  let fold = Pipeline.fold sched in
  let dfg = elab.Elaborate.cdfg.Cdfg.dfg in
  let ctx =
    { elab; sched; fold; stim; funcs; dfg; pre_values = Hashtbl.create 32;
      history = Hashtbl.create 16 }
  in
  (* pre-region evaluated once, as the init state of the FSM would; the
     shared [eval_op] resolves every operand against the pre context *)
  let pre_lookup _ = Some ctx.pre_values in
  List.iter
    (fun id ->
      eval_op ctx ~lookup:pre_lookup ~iter:0 ~values:ctx.pre_values (Dfg.find dfg id))
    (Kernel_compile.pre_topo dfg elab.Elaborate.pre_members);
  let region = sched.Scheduler.s_region in
  let ii = fold.Pipeline.f_ii in
  let stages = fold.Pipeline.f_stages in
  let n_iters = min (Option.value max_iters ~default:stim.Stimulus.n_iters) stim.Stimulus.n_iters in
  let cap =
    match max_cycles with
    | Some c -> c
    | None -> Kernel_compile.default_max_cycles ~ii ~stages ~n_iters
  in
  (* controller state *)
  let stage_iter = Array.make stages (-1) in
  (* iteration id occupying each stage, -1 = bubble *)
  let issued = ref 0 in
  let committed = ref 0 in
  let squashed = ref 0 in
  let stalls = ref 0 in
  let cycle = ref 0 in
  let kernel_state = ref 0 in
  let outputs = ref [] in
  let stop_issue = ref false in
  let exit_at = ref None in
  (* iteration slots begin with stage 0 occupied by iteration 0 *)
  stage_iter.(0) <- 0;
  issued := 1;
  let max_distance =
    List.fold_left (fun acc e -> max acc e.Dfg.distance) 1 (Dfg.all_edges dfg)
  in
  let lookup = history_lookup ctx in
  let active () = Array.exists (fun i -> i >= 0) stage_iter in
  let guard_cycles = ref 0 in
  while active () do
    incr guard_cycles;
    if !guard_cycles > cap then
      raise (Watchdog (Kernel_compile.watchdog_diag ~engine:"interpreted" ~cap));
    (* design-level stall: evaluate the stall condition against the oldest
       active iteration's context (the controller's view) *)
    let design_go =
      match region.Region.stall_cond with
      | None -> true
      | Some c -> (
          (* the stall condition is computed combinationally from the
             current inputs of the newest iteration in flight *)
          let iter = Array.fold_left max (-1) stage_iter in
          if iter < 0 then true
          else
            let v =
              match Hashtbl.find_opt ctx.history iter with
              | Some tbl when Hashtbl.mem tbl c -> Hashtbl.find tbl c
              | _ ->
                  (* not yet computed this iteration: evaluate directly *)
                  let op = Dfg.find dfg c in
                  let values =
                    match Hashtbl.find_opt ctx.history iter with
                    | Some t -> t
                    | None ->
                        let t = Hashtbl.create 8 in
                        Hashtbl.replace ctx.history iter t;
                        t
                  in
                  eval_op ctx ~lookup ~iter ~values op;
                  Hashtbl.find values c
            in
            v <> 0)
    in
    if not (stall_pattern !cycle && design_go) then begin
      incr stalls;
      incr cycle
    end
    else begin
      (* execute every active stage's cell for this kernel state *)
      Array.iteri
        (fun sg iter ->
          if iter >= 0 then begin
            let values =
              match Hashtbl.find_opt ctx.history iter with
              | Some t -> t
              | None ->
                  let t = Hashtbl.create 32 in
                  Hashtbl.replace ctx.history iter t;
                  t
            in
            List.iter
              (fun id ->
                let op = Dfg.find dfg id in
                eval_op ctx ~lookup ~iter ~values op;
                match op.Dfg.kind with
                | Opkind.Write p when guard_true ctx ~values op.Dfg.guard ->
                    outputs :=
                      { k_port = p; k_iter = iter; k_cycle = !cycle; k_value = Hashtbl.find values id }
                      :: !outputs
                | _ -> ())
              (cell_order ctx ~state:!kernel_state ~stage:sg);
            (* data-dependent exit evaluated in the stage that computes it *)
            match region.Region.continue_cond with
            | Some c when Hashtbl.mem values c && !exit_at = None ->
                if Hashtbl.find values c = 0 then begin
                  exit_at := Some iter;
                  stop_issue := true
                end
            | _ -> ()
          end)
        stage_iter;
      (* advance the kernel state; on wrap, shift stages and issue *)
      incr cycle;
      if !kernel_state = ii - 1 then begin
        kernel_state := 0;
        (* retire the oldest stage, squashing iterations past the exit *)
        (match !exit_at with
        | Some e ->
            Array.iteri
              (fun sg iter ->
                if iter > e then begin
                  stage_iter.(sg) <- -1;
                  incr squashed
                end)
              stage_iter
        | None -> ());
        let oldest = stages - 1 in
        if stage_iter.(oldest) >= 0 then begin
          incr committed;
          (* drop history beyond the carried horizon *)
          let retired = stage_iter.(oldest) in
          if retired - max_distance >= 0 then Hashtbl.remove ctx.history (retired - max_distance)
        end;
        for sg = stages - 1 downto 1 do
          stage_iter.(sg) <- stage_iter.(sg - 1)
        done;
        stage_iter.(0) <-
          (if (not !stop_issue) && !issued < n_iters then begin
             let i = !issued in
             incr issued;
             i
           end
           else -1)
      end
      else incr kernel_state
    end
  done;
  (* squashed iterations' outputs never commit *)
  let cutoff = match !exit_at with Some e -> e | None -> max_int in
  let outputs =
    List.filter (fun o -> o.k_iter <= cutoff) (List.rev !outputs)
  in
  {
    k_outputs = outputs;
    k_iters = !committed;
    k_cycles = !cycle;
    k_stall_cycles = !stalls;
    k_squashed = !squashed;
  }

(** Step the folded pipeline.  [stall_pattern cycle] returns [true] when
    the external stall condition allows progress at [cycle] (defaults to
    always-go; the design's own [stall_until] condition is also honoured
    when its ops evaluate false).  [engine] selects the compiled plan
    (default) or the reference interpreter; both produce identical
    results. *)
let run ?funcs ?max_iters ?max_cycles ?stall_pattern ?(engine = `Compiled)
    (elab : Elaborate.t) (sched : Scheduler.t) (stim : Stimulus.t) : result =
  match engine with
  | `Interp -> run_interp ?funcs ?max_iters ?max_cycles ?stall_pattern elab sched stim
  | `Compiled ->
      let fold = Pipeline.fold sched in
      let plan = Kernel_compile.compile elab sched fold in
      Kernel_compile.run ?funcs ?max_iters ?max_cycles ?stall_pattern plan stim

let port_values (r : result) port =
  r.k_outputs
  |> List.filter (fun o -> o.k_port = port)
  |> List.sort (fun a b -> compare (a.k_iter, a.k_cycle) (b.k_iter, b.k_cycle))
  |> List.map (fun o -> o.k_value)
