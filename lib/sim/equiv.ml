(** Functional equivalence between the golden behavioural interpreter and
    the scheduled-design simulator.

    The schedule preserves semantics iff, for every output port, the
    committed value sequence matches the behavioural one.  The check is run
    by the test suite on every design × micro-architecture combination. *)

type mismatch = {
  m_port : string;
  m_index : int;
  m_expected : int option;  (** [None] = golden produced fewer values *)
  m_actual : int option;
}

type verdict = { equivalent : bool; mismatches : mismatch list; checked_values : int }

let compare_port ~port expected actual =
  let rec go i es actuals acc =
    match (es, actuals) with
    | [], [] -> acc
    | e :: es', a :: as' ->
        let acc =
          if e = a then acc
          else { m_port = port; m_index = i; m_expected = Some e; m_actual = Some a } :: acc
        in
        go (i + 1) es' as' acc
    | e :: es', [] ->
        go (i + 1) es' [] ({ m_port = port; m_index = i; m_expected = Some e; m_actual = None } :: acc)
    | [], a :: as' ->
        go (i + 1) [] as' ({ m_port = port; m_index = i; m_expected = None; m_actual = Some a } :: acc)
  in
  go 0 expected actual []

(** [check design_outs golden scheduled] compares every output port. *)
let check ~(out_ports : (string * int) list) (golden : Behav.result)
    (scheduled : Schedule_sim.result) : verdict =
  let mismatches = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (p, _) ->
      let e = Behav.port_values golden p and a = Schedule_sim.port_values scheduled p in
      checked := !checked + List.length e;
      mismatches := compare_port ~port:p e a @ !mismatches)
    out_ports;
  { equivalent = !mismatches = []; mismatches = List.rev !mismatches; checked_values = !checked }

(** [check_kernel design_outs golden kernel] compares the behavioural
    trace against the folded-kernel simulator — the gate the loop-nest
    path adds on top of {!check}: a flattened nest must stay byte-identical
    through folding too. *)
let check_kernel ~(out_ports : (string * int) list) (golden : Behav.result)
    (kernel : Kernel_sim.result) : verdict =
  let mismatches = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (p, _) ->
      let e = Behav.port_values golden p and a = Kernel_sim.port_values kernel p in
      checked := !checked + List.length e;
      mismatches := compare_port ~port:p e a @ !mismatches)
    out_ports;
  { equivalent = !mismatches = []; mismatches = List.rev !mismatches; checked_values = !checked }

(** Merge two verdicts (e.g. schedule-sim and kernel-sim gates). *)
let both a b =
  {
    equivalent = a.equivalent && b.equivalent;
    mismatches = a.mismatches @ b.mismatches;
    checked_values = a.checked_values + b.checked_values;
  }

let mismatch_to_string m =
  Printf.sprintf "port %s[%d]: expected %s, got %s" m.m_port m.m_index
    (match m.m_expected with Some v -> string_of_int v | None -> "<none>")
    (match m.m_actual with Some v -> string_of_int v | None -> "<none>")

let verdict_to_string v =
  if v.equivalent then Printf.sprintf "equivalent (%d values)" v.checked_values
  else
    Printf.sprintf "MISMATCH (%d values, %d differences): %s" v.checked_values
      (List.length v.mismatches)
      (String.concat "; " (List.map mismatch_to_string (List.filteri (fun i _ -> i < 5) v.mismatches)))

(* ------------------------------------------------------------------ *)
(* Randomized three-way equivalence fuzzing: seeded random designs ×
   micro-architectures × stimuli (stall patterns and early exits
   included), behavioural vs schedule-sim vs compiled-kernel (plus
   interpreted-kernel cross-check of the full result record).  This is
   the CI gate behind the compiled engine, in the spirit of "Automated
   Formal Equivalence Verification of Pipelined Nested Loops"
   (arXiv 1712.09818): no proof, but an adversarial randomized search
   over the exact semantics the proof would cover. *)

open Hls_frontend

(* deterministic splitmix-style PRNG; no global [Random] state *)
type rng = { mutable rs : int }

let mix x =
  let x = x * 0x9E3779B1 land max_int in
  let x = x lxor (x lsr 15) in
  let x = x * 0x85EBCA77 land max_int in
  x lxor (x lsr 13)

let rng_make seed = { rs = mix ((seed * 0x5DEECE66D land max_int) + 0xB) }

let rnd r bound =
  r.rs <- mix r.rs;
  r.rs mod bound

let pick r l = List.nth l (rnd r (List.length l))

(** Generate a seeded random pipelineable design: 1–3 input ports, 1–2
    output ports, declared accumulator variables with a loop-carried SCC,
    random expression dataflow (arith, logic, compares, mux, div/mod),
    optionally guarded writes, and (one in three) a data-dependent exit
    with geometric survival — the construct that exercises squash. *)
let gen_design ~seed : Ast.design =
  let r = rng_make seed in
  let open Dsl in
  let n_ins = 1 + rnd r 3 in
  let ins = List.init n_ins (fun i -> in_port (Printf.sprintf "i%d" i) (8 + rnd r 9)) in
  let n_outs = 1 + rnd r 2 in
  let outs = List.init n_outs (fun i -> out_port (Printf.sprintf "o%d" i) (12 + rnd r 9)) in
  let n_vars = 2 + rnd r 3 in
  let vars = List.init n_vars (fun i -> var (Printf.sprintf "t%d" i) (10 + rnd r 11)) in
  let var_name i = Printf.sprintf "t%d" (i mod n_vars) in
  let leaf () =
    match rnd r 4 with
    | 0 -> int (rnd r 64)
    | 1 -> v (var_name (rnd r n_vars))
    | _ -> port (fst (List.nth ins (rnd r n_ins)))
  in
  let rec expr depth =
    if depth = 0 then leaf ()
    else
      let sub () = expr (depth - 1) in
      match rnd r 12 with
      | 0 -> sub () +: sub ()
      | 1 -> sub () -: sub ()
      | 2 -> sub () *: sub ()
      | 3 -> sub () &: sub ()
      | 4 -> sub () |: sub ()
      | 5 -> sub () ^: sub ()
      | 6 -> sub () <<: int (1 + rnd r 3)
      | 7 -> sub () >>: int (1 + rnd r 3)
      | 8 -> cond (sub () <: sub ()) (sub ()) (sub ())
      | 9 -> sub () /: (sub () |: int 1)
      | 10 -> sub () %: (int (3 + rnd r 13))
      | _ -> sub () +: (sub () *: sub ())
  in
  (* every variable is seeded in the pre region (no read-before-assign)
     and re-assigned in the body; one accumulator folds in its own
     previous value so the kernel carries an SCC across iterations *)
  let pre = List.map (fun (name, _) -> name := int (rnd r 16)) vars @ [ wait ] in
  let body_assigns =
    List.mapi
      (fun i (name, _) ->
        let e = expr (1 + rnd r 2) in
        if i = 0 then name := v name +: e else name := e)
      vars
  in
  let writes =
    List.mapi
      (fun i (p, _) ->
        let w = write p (v (var_name (rnd r n_vars)) +: if i = 0 then int 0 else expr 1) in
        (* one in three writes sits under a data-dependent guard *)
        if rnd r 3 = 0 then when_ (v (var_name (rnd r n_vars)) >=: int (rnd r 24)) [ w ] else w)
      outs
  in
  let continue_cond =
    if rnd r 3 = 0 then
      (* geometric early exit: survives each iteration with prob 7/8 *)
      v (var_name (rnd r n_vars)) &: int 7 <>: int (rnd r 8)
    else int 1
  in
  let body = body_assigns @ [ wait ] @ writes in
  design
    (Printf.sprintf "fuzz%d" seed)
    ~ins ~outs ~vars
    (pre @ [ do_while ~name:"main" ~min_latency:1 ~max_latency:64 body continue_cond ])

type fuzz_failure = {
  ff_case : int;
  ff_seed : int;
  ff_arch : string;  (** micro-architecture + stimulus description *)
  ff_detail : string;  (** mismatching verdict or exception *)
}

type fuzz_report = {
  fz_cases : int;
  fz_equivalent : int;
  fz_infeasible : int;  (** schedule found no feasible pipeline: skipped *)
  fz_checked_values : int;
  fz_failures : fuzz_failure list;
}

let fuzz_ok r = r.fz_failures = [] && r.fz_equivalent > 0

let fuzz_to_string r =
  Printf.sprintf "fuzz: %d cases, %d equivalent, %d infeasible, %d values checked, %d failures%s"
    r.fz_cases r.fz_equivalent r.fz_infeasible r.fz_checked_values (List.length r.fz_failures)
    (match r.fz_failures with
    | [] -> ""
    | f :: _ -> Printf.sprintf " (first: case %d seed %d [%s] %s)" f.ff_case f.ff_seed f.ff_arch f.ff_detail)

(** Run [cases] seeded random three-way checks.  Per case: generate a
    design, pick a micro-architecture (II, clock) and a stimulus (length,
    stall duty), then require behavioural ≡ schedule-sim ≡ compiled
    kernel on every output port, equal commit counts, and an identical
    full result record between the interpreted and compiled kernel
    engines.  Infeasible schedules are skipped (counted), never hidden
    failures.  Deterministic for a given [seed]. *)
let fuzz ?(cases = 200) ~seed () =
  let lib = Hls_techlib.Library.artisan90 in
  let equivalent = ref 0 and infeasible = ref 0 and checked = ref 0 in
  let failures = ref [] in
  for case = 0 to cases - 1 do
    let cseed = mix ((seed * 1000003) + case) land 0xFFFFFF in
    let r = rng_make (cseed + 77) in
    let d = gen_design ~seed:cseed in
    let ii = pick r [ None; None; Some 1; Some 2; Some 3 ] in
    let clock_ps = pick r [ 1200.0; 1600.0; 2500.0 ] in
    let n_iters = pick r [ 5; 13; 40 ] in
    let duty = pick r [ `Full; `Half; `Hash ] in
    let stall_pattern =
      match duty with
      | `Full -> fun _ -> true
      | `Half -> fun c -> c mod 2 = 0
      | `Hash -> fun c -> mix (c + cseed) land 3 <> 0 (* 75% go *)
    in
    let arch =
      Printf.sprintf "ii=%s clock=%.0f n=%d duty=%s"
        (match ii with None -> "auto" | Some i -> string_of_int i)
        clock_ps n_iters
        (match duty with `Full -> "full" | `Half -> "half" | `Hash -> "hash75")
    in
    match
      let e = Elaborate.design d in
      let region = Elaborate.main_region ?ii e in
      (e, Hls_core.Scheduler.schedule ~lib ~clock_ps region)
    with
    | exception exn ->
        failures :=
          { ff_case = case; ff_seed = cseed; ff_arch = arch;
            ff_detail = "front-end raised: " ^ Printexc.to_string exn }
          :: !failures
    | _, Error _ -> incr infeasible
    | e, Ok s -> (
        let stim = Stimulus.small_random ~seed:cseed ~n_iters ~ports:d.Ast.d_ins in
        match
          let golden = Behav.run d stim in
          let analytic = Schedule_sim.run e s stim in
          let compiled = Kernel_sim.run ~stall_pattern ~engine:`Compiled e s stim in
          let interp = Kernel_sim.run ~stall_pattern ~engine:`Interp e s stim in
          (golden, analytic, compiled, interp)
        with
        | exception exn ->
            failures :=
              { ff_case = case; ff_seed = cseed; ff_arch = arch;
                ff_detail = "simulation raised: " ^ Printexc.to_string exn }
              :: !failures
        | golden, analytic, compiled, interp ->
            let va = check ~out_ports:d.Ast.d_outs golden analytic in
            let vk = check_kernel ~out_ports:d.Ast.d_outs golden compiled in
            let v = both va vk in
            checked := !checked + v.checked_values;
            let fail detail =
              failures :=
                { ff_case = case; ff_seed = cseed; ff_arch = arch; ff_detail = detail }
                :: !failures
            in
            if not v.equivalent then fail (verdict_to_string v)
            else if analytic.Schedule_sim.r_iters <> compiled.Kernel_sim.k_iters then
              fail
                (Printf.sprintf "commit counts differ: analytic %d vs kernel %d"
                   analytic.Schedule_sim.r_iters compiled.Kernel_sim.k_iters)
            else if interp <> compiled then
              fail
                (Printf.sprintf
                   "engines diverge: interp {iters=%d;cycles=%d;stalls=%d;squashed=%d;outs=%d} vs \
                    compiled {iters=%d;cycles=%d;stalls=%d;squashed=%d;outs=%d}"
                   interp.Kernel_sim.k_iters interp.Kernel_sim.k_cycles
                   interp.Kernel_sim.k_stall_cycles interp.Kernel_sim.k_squashed
                   (List.length interp.Kernel_sim.k_outputs) compiled.Kernel_sim.k_iters
                   compiled.Kernel_sim.k_cycles compiled.Kernel_sim.k_stall_cycles
                   compiled.Kernel_sim.k_squashed
                   (List.length compiled.Kernel_sim.k_outputs))
            else incr equivalent)
  done;
  {
    fz_cases = cases;
    fz_equivalent = !equivalent;
    fz_infeasible = !infeasible;
    fz_checked_values = !checked;
    fz_failures = List.rev !failures;
  }
