(** Functional equivalence between the golden behavioural interpreter and
    the scheduled-design simulator.

    The schedule preserves semantics iff, for every output port, the
    committed value sequence matches the behavioural one.  The check is run
    by the test suite on every design × micro-architecture combination. *)

type mismatch = {
  m_port : string;
  m_index : int;
  m_expected : int option;  (** [None] = golden produced fewer values *)
  m_actual : int option;
}

type verdict = { equivalent : bool; mismatches : mismatch list; checked_values : int }

let compare_port ~port expected actual =
  let rec go i es actuals acc =
    match (es, actuals) with
    | [], [] -> acc
    | e :: es', a :: as' ->
        let acc =
          if e = a then acc
          else { m_port = port; m_index = i; m_expected = Some e; m_actual = Some a } :: acc
        in
        go (i + 1) es' as' acc
    | e :: es', [] ->
        go (i + 1) es' [] ({ m_port = port; m_index = i; m_expected = Some e; m_actual = None } :: acc)
    | [], a :: as' ->
        go (i + 1) [] as' ({ m_port = port; m_index = i; m_expected = None; m_actual = Some a } :: acc)
  in
  go 0 expected actual []

(** [check design_outs golden scheduled] compares every output port. *)
let check ~(out_ports : (string * int) list) (golden : Behav.result)
    (scheduled : Schedule_sim.result) : verdict =
  let mismatches = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (p, _) ->
      let e = Behav.port_values golden p and a = Schedule_sim.port_values scheduled p in
      checked := !checked + List.length e;
      mismatches := compare_port ~port:p e a @ !mismatches)
    out_ports;
  { equivalent = !mismatches = []; mismatches = List.rev !mismatches; checked_values = !checked }

(** [check_kernel design_outs golden kernel] compares the behavioural
    trace against the folded-kernel simulator — the gate the loop-nest
    path adds on top of {!check}: a flattened nest must stay byte-identical
    through folding too. *)
let check_kernel ~(out_ports : (string * int) list) (golden : Behav.result)
    (kernel : Kernel_sim.result) : verdict =
  let mismatches = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (p, _) ->
      let e = Behav.port_values golden p and a = Kernel_sim.port_values kernel p in
      checked := !checked + List.length e;
      mismatches := compare_port ~port:p e a @ !mismatches)
    out_ports;
  { equivalent = !mismatches = []; mismatches = List.rev !mismatches; checked_values = !checked }

(** Merge two verdicts (e.g. schedule-sim and kernel-sim gates). *)
let both a b =
  {
    equivalent = a.equivalent && b.equivalent;
    mismatches = a.mismatches @ b.mismatches;
    checked_values = a.checked_values + b.checked_values;
  }

let mismatch_to_string m =
  Printf.sprintf "port %s[%d]: expected %s, got %s" m.m_port m.m_index
    (match m.m_expected with Some v -> string_of_int v | None -> "<none>")
    (match m.m_actual with Some v -> string_of_int v | None -> "<none>")

let verdict_to_string v =
  if v.equivalent then Printf.sprintf "equivalent (%d values)" v.checked_values
  else
    Printf.sprintf "MISMATCH (%d values, %d differences): %s" v.checked_values
      (List.length v.mismatches)
      (String.concat "; " (List.map mismatch_to_string (List.filteri (fun i _ -> i < 5) v.mismatches)))
