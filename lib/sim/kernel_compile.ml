(** One-time compilation of a folded pipeline into a specialized simulator.

    {!Kernel_sim}'s interpreter re-runs the kernel-cell topo sort for every
    active stage on every clock cycle and routes every operand through
    per-iteration hashtables.  This pass resolves all of that {e once} per
    [(Elaborate.t, Scheduler.t, Pipeline.t)] triple into a closed-over
    execution plan:

    - cell topological orders, in-edge lists, guard atoms, result widths
      and loop-carried distances are looked up a single time and flattened
      into int-encoded instruction arrays — a register machine whose
      dispatch is a jump-table [match] on a dense opcode, with no
      per-operand closure calls (only [Call] ops and stimulus [Read]s go
      through a bound closure / array ref);
    - per-iteration value hashtables become a dense op-id-indexed arena —
      a power-of-two ring of iteration contexts (covering at least
      [stages + max_distance + 1] in-flight iterations), each an
      [int array] with an iteration-stamp array distinguishing computed
      values from stale slots, addressed by [iter land mask];
    - operand reads are mode-classified at compile time: a distance-0
      input of a main-loop op is always stamped by the time its consumer
      runs (the schedule orders producers first and an iteration walks
      the pipeline monotonically — stalls freeze everything, squash kills
      whole iterations), so it compiles to an unchecked read of the
      hoisted current-iteration row; inputs produced only by the pre
      region read the pre array directly; loop-carried inputs go through
      the ring; only the stall-condition program — whose early evaluation
      can legitimately race ahead of the producing cell — keeps the
      interpreter's stamped-else-pre check;
    - width truncation is pre-encoded per instruction ([1 lsl width], or 0
      for the >= 62-bit identity) and applied with two masks and a
      subtract;
    - output events accumulate in growable int arrays (no per-event
      allocation on the hot path) and materialize as records once at the
      end of the run.

    The controller semantics are exactly the interpreter's: kernel-state
    counter, stage-validity shift register (prologue/epilogue), external
    stall pattern and design stall condition freezing the whole pipeline,
    data-dependent exit squashing younger in-flight iterations.  The
    equivalence [interpreted ≡ compiled] (outputs and all four counters)
    is enforced by a QCheck property and the {!Equiv.fuzz} CI gate.

    A [plan] owns its arena: it is reusable across runs (arena reset per
    run) but not thread-safe and not reentrant. *)

open Hls_ir
open Hls_core
open Hls_frontend
module Diag = Hls_diag.Diag

type output_event = { k_port : string; k_iter : int; k_cycle : int; k_value : int }

type result = {
  k_outputs : output_event list;
  k_iters : int;  (** committed iterations *)
  k_cycles : int;  (** clock cycles stepped, including stalls and drain *)
  k_stall_cycles : int;
  k_squashed : int;  (** iterations issued past the exit and discarded *)
}

exception Watchdog of Diag.t

let watchdog_diag ~engine ~cap =
  Diag.make ~phase:Diag.Verify ~code:"watchdog_exceeded"
    "kernel simulation (%s engine) still active after %d cycles; a stalled pipeline never drains \
     — raise ?max_cycles if the stimulus is legitimately this long"
    engine cap

(** Default cycle cap: generous slack over the stall-free cycle count
    [(n_iters + stages) * ii] so that bounded-duty external stall patterns
    never trip it, with a floor covering short runs. *)
let default_max_cycles ~ii ~stages ~n_iters =
  max 100_000 ((n_iters + stages + 8) * max 1 ii * 8)

(** Topologically ordered ops of one kernel cell (state, stage): within a
    cell the chained dependencies must execute producer-first.  Shared by
    the compiled plan (resolved once) and the interpreter (per cycle). *)
let cell_topo (dfg : Dfg.t) (fold : Pipeline.t) ~state ~stage =
  let ops = Pipeline.ops_at fold ~state ~stage in
  let member = Hashtbl.create 8 in
  List.iter (fun o -> Hashtbl.replace member o ()) ops;
  let succs id =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Hashtbl.mem member e.Dfg.dst then Some e.Dfg.dst else None)
      (Dfg.out_edges dfg id)
  in
  match Graph_algo.topo_sort ~nodes:ops ~succs with
  | Some o -> o
  | None -> invalid_arg "Kernel_sim: combinational cycle within a kernel cell"

(** Pre-region ops in dependency order (over distance-0 edges). *)
let pre_topo (dfg : Dfg.t) pre_members =
  let member_set = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) pre_members;
  let succs id =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Hashtbl.mem member_set e.Dfg.dst then Some e.Dfg.dst else None)
      (Dfg.out_edges dfg id)
  in
  match Graph_algo.topo_sort ~nodes:pre_members ~succs with
  | Some order -> order
  | None -> invalid_arg "Kernel_sim: cyclic pre region"

(* ------------------------------------------------------------------ *)

(* Opcodes of the flattened instruction stream.  10 and above are binary
   ops reading operands [a] and [b]; below 10, operand use varies. *)
let op_const = 0 (* imm *)
let op_read = 1 (* port.(i), sample at iter *)
let op_call = 2 (* fn.(i) iter vs ss *)
let op_loop_mux = 3 (* iter = 0 ? a : b *)
let op_shift_mask = 4 (* (a asr imm) land imm2 — Write/Sext copies, Slice, Zext *)
let op_concat = 5 (* (a lsl imm) lor (b land imm2) *)
let op_mux = 6 (* a <> 0 ? b : c *)
let op_neg = 7
let op_bnot = 8
let op_lnot = 9
let op_add = 10
let op_sub = 11
let op_mul = 12
let op_div = 13
let op_mod = 14
let op_shl = 15
let op_shr = 16
let op_band = 17
let op_bor = 18
let op_bxor = 19
let op_land = 20
let op_lor = 21
let op_eq = 22
let op_neq = 23
let op_lt = 24
let op_le = 25
let op_gt = 26
let op_ge = 27
let op_mac = 28 (* fused multiply-accumulate: both results stamped *)

(* Operand modes, encoded in the distance arrays:
     d = 0   unchecked read of the current iteration's hoisted value row
             (distance-0 input of a main-loop producer: always stamped)
     d = -1  read the pre-region array (producer lives only there)
     d = -3  immediate: the src field holds a folded constant value
     d > 0   loop-carried: ring lookup at [iter - d], stamped-else-pre
     d = -2  checked current-row read, stamped-else-pre (stall program
             only, where early evaluation can outrun the producing cell) *)
let mode_pre = -1
let mode_checked = -2
let mode_imm = -3

(* One kernel cell (or the pre region, or a stall condition) flattened
   into parallel instruction arrays, topo order.  The arena arrays are
   embedded so execution needs no further context. *)
type prog = {
  q_n : int;
  q_code : int array;
  q_dst : int array;  (* op id *)
  q_a : int array;  (* operand 0 src op id *)
  q_ad : int array;  (* operand 0 mode/distance *)
  q_b : int array;
  q_bd : int array;
  q_c : int array;
  q_cd : int array;
  q_imm : int array;  (* constant / shift amount *)
  q_imm2 : int array;  (* mask (-1 = none) *)
  q_tm : int array;  (* truncation: [1 lsl width], 0 = identity (>= 62) *)
  q_port : int array ref array;  (* op_read: bound stimulus samples *)
  q_fn : (int -> int array -> int array -> int) array;  (* op_call *)
  q_mask : int;  (* ring slots - 1 *)
  q_values : int array array;
  q_stamp : int array array;
  q_pre : int array;
}

type write = {
  w_id : int;
  w_pidx : int;  (* index into the plan's port-name table *)
  w_preds : int array;  (* guard atoms *)
  w_pols : bool array;
}

type plan = {
  p_ii : int;
  p_stages : int;
  p_mask : int;  (** ring slots - 1; the ring size is a power of two *)
  p_values : int array array;  (** slot -> op id -> value *)
  p_stamp : int array array;  (** slot -> op id -> owning iteration, -1 = stale *)
  p_pre : int array;  (** pre-region values, op-id-indexed (0 = unset) *)
  p_pre_stamp : int array;  (** all-zero stamp row the pre program runs against *)
  p_progs : prog array array;  (** kernel state -> stage -> flattened cell *)
  p_writes : write array array array;  (** kernel state -> stage -> port writes, topo order *)
  p_n_writes : int;  (** total write ops: exact per-iteration output-event bound *)
  p_wports : string array;  (** write-port names, indexed by [w_pidx] *)
  p_pre_prog : prog;
  p_stall : (int * prog) option;  (** design stall-condition op and its evaluator *)
  p_continue : int option;  (** continue-condition op (computed value 0 = exit) *)
  p_funcs : (string -> int list -> int) ref;
  p_ports : (string * int array ref) list;  (** read ports rebound per run *)
}

let stages t = t.p_stages
let ii t = t.p_ii

(* Cold operand paths: loop-carried ring lookup and the stall program's
   checked current-row read.  Kept out of line so the two hot modes stay
   branch-cheap at every inlined read site in [exec_prog]. *)
let rd_slow (q : prog) iter (vs : int array) (ss : int array) s d =
  if d > 0 then begin
    let fi = iter - d in
    if fi < 0 then q.q_pre.(s)
    else
      let sl = fi land q.q_mask in
      if (Array.unsafe_get q.q_stamp sl).(s) = fi then (Array.unsafe_get q.q_values sl).(s)
      else q.q_pre.(s)
  end
  else if (* mode_checked *) Array.unsafe_get ss s = iter then Array.unsafe_get vs s
  else q.q_pre.(s)

(* Execute a flattened cell for [iter]; [vs]/[ss] are the iteration's
   hoisted arena rows ([values]/[stamp] at slot [iter land mask]). *)
let exec_prog (q : prog) iter (vs : int array) (ss : int array) =
  let code = q.q_code and qa = q.q_a and qad = q.q_ad and qb = q.q_b and qbd = q.q_bd in
  let pre = q.q_pre in
  for i = 0 to q.q_n - 1 do
    let k = Array.unsafe_get code i in
    let v =
      if k >= op_add then begin
        (* binary op: operand evaluation is pure, order is immaterial *)
        let x =
          let s = Array.unsafe_get qa i and d = Array.unsafe_get qad i in
          if d = 0 then Array.unsafe_get vs s
          else if d = mode_imm then s
          else if d = mode_pre then Array.unsafe_get pre s
          else rd_slow q iter vs ss s d
        in
        let y =
          let s = Array.unsafe_get qb i and d = Array.unsafe_get qbd i in
          if d = 0 then Array.unsafe_get vs s
          else if d = mode_imm then s
          else if d = mode_pre then Array.unsafe_get pre s
          else rd_slow q iter vs ss s d
        in
        match k with
        | 10 -> x + y
        | 11 -> x - y
        | 12 -> x * y
        | 13 -> if y = 0 then 0 else x / y
        | 14 -> if y = 0 then 0 else x mod y
        | 15 -> x lsl (y land 63)
        | 16 -> x asr (y land 63)
        | 17 -> x land y
        | 18 -> x lor y
        | 19 -> x lxor y
        | 20 -> if x <> 0 && y <> 0 then 1 else 0
        | 21 -> if x <> 0 || y <> 0 then 1 else 0
        | 22 -> if x = y then 1 else 0
        | 23 -> if x <> y then 1 else 0
        | 24 -> if x < y then 1 else 0
        | 25 -> if x <= y then 1 else 0
        | 26 -> if x > y then 1 else 0
        | 27 -> if x >= y then 1 else 0
        | _ ->
            (* op_mac: x*y truncated and stamped as the fused multiply's
               own result, then accumulated into operand [c] *)
            let m = x * y in
            let tp = Array.unsafe_get q.q_imm i in
            let m =
              if tp = 0 then m
              else
                let m' = m land (tp - 1) in
                if m' land (tp asr 1) = 0 then m' else m' - tp
            in
            let pid = Array.unsafe_get q.q_imm2 i in
            Array.unsafe_set vs pid m;
            Array.unsafe_set ss pid iter;
            let z =
              let s = Array.unsafe_get q.q_c i and d = Array.unsafe_get q.q_cd i in
              if d = 0 then Array.unsafe_get vs s
              else if d = mode_imm then s
              else if d = mode_pre then Array.unsafe_get pre s
              else rd_slow q iter vs ss s d
            in
            m + z
      end
      else if k = op_shift_mask then
        let a =
          let s = Array.unsafe_get qa i and d = Array.unsafe_get qad i in
          if d = 0 then Array.unsafe_get vs s
          else if d = mode_imm then s
          else if d = mode_pre then Array.unsafe_get pre s
          else rd_slow q iter vs ss s d
        in
        (a asr Array.unsafe_get q.q_imm i) land Array.unsafe_get q.q_imm2 i
      else
        match k with
        | 0 -> Array.unsafe_get q.q_imm i
        | 1 ->
            let arr = !(q.q_port.(i)) in
            if iter < 0 || iter >= Array.length arr then 0 else Array.unsafe_get arr iter
        | 2 -> q.q_fn.(i) iter vs ss
        | 3 ->
            (* loop_mux *)
            let s, d =
              if iter = 0 then (qa.(i), qad.(i)) else (qb.(i), qbd.(i))
            in
            if d = 0 then Array.unsafe_get vs s
            else if d = mode_imm then s
            else if d = mode_pre then Array.unsafe_get pre s
            else rd_slow q iter vs ss s d
        | 5 ->
            (* concat *)
            let a =
              let s = qa.(i) and d = qad.(i) in
              if d = 0 then Array.unsafe_get vs s
              else if d = mode_imm then s
              else if d = mode_pre then Array.unsafe_get pre s
              else rd_slow q iter vs ss s d
            in
            let b =
              let s = qb.(i) and d = qbd.(i) in
              if d = 0 then Array.unsafe_get vs s
              else if d = mode_imm then s
              else if d = mode_pre then Array.unsafe_get pre s
              else rd_slow q iter vs ss s d
            in
            (a lsl q.q_imm.(i)) lor (b land q.q_imm2.(i))
        | 6 ->
            (* mux: evaluate the selected arm, as the interpreter does *)
            let sel =
              let s = qa.(i) and d = qad.(i) in
              if d = 0 then Array.unsafe_get vs s
              else if d = mode_imm then s
              else if d = mode_pre then Array.unsafe_get pre s
              else rd_slow q iter vs ss s d
            in
            let s, d = if sel <> 0 then (qb.(i), qbd.(i)) else (q.q_c.(i), q.q_cd.(i)) in
            if d = 0 then Array.unsafe_get vs s
            else if d = mode_imm then s
            else if d = mode_pre then Array.unsafe_get pre s
            else rd_slow q iter vs ss s d
        | _ ->
            (* unary: neg / bnot / lnot *)
            let a =
              let s = qa.(i) and d = qad.(i) in
              if d = 0 then Array.unsafe_get vs s
              else if d = mode_imm then s
              else if d = mode_pre then Array.unsafe_get pre s
              else rd_slow q iter vs ss s d
            in
            if k = op_neg then -a else if k = op_bnot then lnot a else if a = 0 then 1 else 0
    in
    (* Width.truncate with [1 lsl width] pre-encoded (0 = identity) *)
    let t = Array.unsafe_get q.q_tm i in
    let v =
      if t = 0 then v
      else
        let v = v land (t - 1) in
        if v land (t asr 1) = 0 then v else v - t
    in
    let d = Array.unsafe_get q.q_dst i in
    Array.unsafe_set vs d v;
    Array.unsafe_set ss d iter
  done

let compile (elab : Elaborate.t) (sched : Scheduler.t) (fold : Pipeline.t) : plan =
  let dfg = elab.Elaborate.cdfg.Cdfg.dfg in
  let region = sched.Scheduler.s_region in
  let ii = fold.Pipeline.f_ii in
  let stages = fold.Pipeline.f_stages in
  let max_distance =
    List.fold_left (fun acc e -> max acc e.Dfg.distance) 1 (Dfg.all_edges dfg)
  in
  let ring =
    let need = stages + max_distance + 1 in
    let r = ref 1 in
    while !r < need do
      r := !r * 2
    done;
    !r
  in
  let mask = ring - 1 in
  let n_ops = Dfg.fold_ops dfg (fun op m -> max m op.Dfg.id) (-1) + 1 in
  let values = Array.init ring (fun _ -> Array.make n_ops 0) in
  let stamp = Array.init ring (fun _ -> Array.make n_ops (-1)) in
  let pre = Array.make n_ops 0 in
  let funcs = ref Behav.default_fun in
  (* ops executed by the main loop (member of some kernel cell): their
     distance-0 consumers always find them stamped; anything else only
     ever has a pre-region value *)
  let in_main = Array.make n_ops false in
  for state = 0 to ii - 1 do
    for stage = 0 to stages - 1 do
      List.iter (fun id -> in_main.(id) <- true) (Pipeline.ops_at fold ~state ~stage)
    done
  done;
  let in_pre = Array.make n_ops false in
  List.iter (fun id -> in_pre.(id) <- true) elab.Elaborate.pre_members;
  (* Constant-folding support.  A [Const] op folds into its distance-0
     consumers' operand immediates; its own instruction is then removable
     unless the arena slot is [observed] by something that addresses it
     by id: write-guard atoms, the stall / continue conditions (and the
     stall op's checked operand reads), Call argument closures, and
     loop-carried ring reads. *)
  let is_const = Array.make n_ops false in
  let const_val = Array.make n_ops 0 in
  let observed = Array.make n_ops false in
  Dfg.fold_ops dfg
    (fun op () ->
      (match op.Dfg.kind with
      | Opkind.Const v ->
          is_const.(op.Dfg.id) <- true;
          let w = Width.clamp op.Dfg.width in
          const_val.(op.Dfg.id) <-
            (if w >= 62 then v
             else
               let t = 1 lsl w in
               let v = v land (t - 1) in
               if v land (t asr 1) = 0 then v else v - t)
      | Opkind.Call _ ->
          List.iter
            (fun (e : Dfg.edge) -> observed.(e.Dfg.src) <- true)
            (Dfg.in_edges dfg op.Dfg.id)
      | _ -> ());
      List.iter (fun (at : Guard.atom) -> observed.(at.Guard.pred) <- true) op.Dfg.guard;
      List.iter
        (fun (e : Dfg.edge) -> if e.Dfg.distance > 0 then observed.(e.Dfg.src) <- true)
        (Dfg.in_edges dfg op.Dfg.id))
    ();
  Option.iter (fun c -> observed.(c) <- true) region.Region.continue_cond;
  Option.iter
    (fun c ->
      observed.(c) <- true;
      List.iter (fun (e : Dfg.edge) -> observed.(e.Dfg.src) <- true) (Dfg.in_edges dfg c))
    region.Region.stall_cond;
  (* one sample-array ref per distinct read port of the compiled ops *)
  let ports : (string, int array ref) Hashtbl.t = Hashtbl.create 8 in
  let port_ref p =
    match Hashtbl.find_opt ports p with
    | Some r -> r
    | None ->
        let r = ref [||] in
        Hashtbl.replace ports p r;
        r
  in
  let no_port = ref [||] in
  let no_fn _ _ _ = 0 in
  (* Flatten a topo-ordered op list into an instruction program.  [mode]
     selects the operand read classification: [`Pre] reads everything
     from the pre array (the pre region runs once against it at iteration
     0), [`Stall] keeps the stamped-else-pre check on distance-0 reads
     (early evaluation can outrun the producing cell), [`Main] uses the
     unchecked fast path for main-loop distance-0 producers. *)
  let build_prog ~mode ids =
    (* a Const whose every observer is a foldable distance-0 operand read
       needs no instruction at all in main-loop cells *)
    let ids =
      match mode with
      | `Main -> List.filter (fun id -> not (is_const.(id) && not observed.(id))) ids
      | `Pre | `Stall -> ids
    in
    let n = List.length ids in
    let code = Array.make n 0
    and dst = Array.make n 0
    and a = Array.make n 0
    and ad = Array.make n 0
    and b = Array.make n 0
    and bd = Array.make n 0
    and c = Array.make n 0
    and cd = Array.make n 0
    and imm = Array.make n 0
    and imm2 = Array.make n (-1)
    and tm = Array.make n 0
    and port = Array.make n no_port
    and fn = Array.make n no_fn in
    let operand_mode src dist =
      match mode with
      | `Pre -> mode_pre
      | `Stall -> if dist > 0 then dist else if in_main.(src) then mode_checked else mode_pre
      | `Main -> if dist > 0 then dist else if in_main.(src) then 0 else mode_pre
    in
    List.iteri
      (fun i id ->
        let op = Dfg.find dfg id in
        let ins = Array.of_list (Dfg.in_edges dfg id) in
        let set_in k (sa, da) =
          let e = ins.(k) in
          let src = e.Dfg.src in
          if
            (match mode with `Main -> true | `Pre | `Stall -> false)
            && e.Dfg.distance = 0
            && is_const.(src)
            && (in_main.(src) || in_pre.(src))
          then begin
            (* fold: the stamped (main) or pre-array (pre-only) value of a
               Const is its width-truncated literal either way.  The stall
               program must NOT fold: its early evaluation legitimately
               sees the pre fallback of a not-yet-stamped Const, exactly
               as the interpreter does. *)
            sa.(i) <- const_val.(src);
            da.(i) <- mode_imm
          end
          else begin
            sa.(i) <- src;
            da.(i) <- operand_mode src e.Dfg.distance
          end
        in
        let unary () = set_in 0 (a, ad) in
        let binary () =
          set_in 0 (a, ad);
          set_in 1 (b, bd)
        in
        dst.(i) <- id;
        (let w = Width.clamp op.Dfg.width in
         tm.(i) <- (if w >= 62 then 0 else 1 lsl w));
        (match op.Dfg.kind with
        | Opkind.Const v ->
            code.(i) <- op_const;
            imm.(i) <- v
        | Opkind.Read p ->
            code.(i) <- op_read;
            port.(i) <- port_ref p
        | Opkind.Call cl ->
            code.(i) <- op_call;
            let callee = cl.Opkind.callee in
            let readers =
              Array.map
                (fun (e : Dfg.edge) ->
                  let src = e.Dfg.src in
                  let m = operand_mode src e.Dfg.distance in
                  if m = mode_pre then fun _ _ _ -> pre.(src)
                  else if m > 0 then
                    fun iter _ _ ->
                      let fi = iter - m in
                      if fi < 0 then pre.(src)
                      else
                        let sl = fi land mask in
                        if stamp.(sl).(src) = fi then values.(sl).(src) else pre.(src)
                  else
                    (* unchecked and checked current-row reads coincide
                       for a rare Call argument: keep the check *)
                    fun iter vs ss -> if ss.(src) = iter then vs.(src) else pre.(src))
                ins
            in
            fn.(i) <-
              (fun iter vs ss ->
                !funcs callee (Array.to_list (Array.map (fun r -> r iter vs ss) readers)))
        | Opkind.Loop_mux ->
            code.(i) <- op_loop_mux;
            binary ()
        | Opkind.Write _ ->
            code.(i) <- op_shift_mask;
            unary ()
        | Opkind.Sext _ ->
            code.(i) <- op_shift_mask;
            unary ()
        | Opkind.Slice (hi, lo) ->
            code.(i) <- op_shift_mask;
            unary ();
            imm.(i) <- lo;
            let w = hi - lo + 1 in
            if w < 62 then imm2.(i) <- (1 lsl w) - 1
        | Opkind.Zext w ->
            code.(i) <- op_shift_mask;
            unary ();
            if w < 62 then imm2.(i) <- (1 lsl w) - 1
        | Opkind.Concat ->
            code.(i) <- op_concat;
            binary ();
            let wb = (Dfg.find dfg ins.(1).Dfg.src).Dfg.width in
            imm.(i) <- wb;
            imm2.(i) <- (1 lsl wb) - 1
        | Opkind.Mux ->
            code.(i) <- op_mux;
            binary ();
            set_in 2 (c, cd)
        | Opkind.Un u ->
            code.(i) <-
              (match u with
              | Opkind.Neg -> op_neg
              | Opkind.Bnot -> op_bnot
              | Opkind.Lnot -> op_lnot);
            unary ()
        | Opkind.Bin bk ->
            code.(i) <-
              (match bk with
              | Opkind.Add -> op_add
              | Opkind.Sub -> op_sub
              | Opkind.Mul -> op_mul
              | Opkind.Div -> op_div
              | Opkind.Mod -> op_mod
              | Opkind.Shl -> op_shl
              | Opkind.Shr -> op_shr
              | Opkind.Band -> op_band
              | Opkind.Bor -> op_bor
              | Opkind.Bxor -> op_bxor
              | Opkind.Land -> op_land
              | Opkind.Lor -> op_lor
              | Opkind.Eq -> op_eq
              | Opkind.Neq -> op_neq
              | Opkind.Lt -> op_lt
              | Opkind.Le -> op_le
              | Opkind.Gt -> op_gt
              | Opkind.Ge -> op_ge);
            binary ()))
      ids;
    (* MAC fusion (main cells only): a multiply feeding an add over a
       distance-0 edge within the same cell, with no reader between the
       two instructions, collapses into one op_mac that still truncates
       and stamps the multiply's own result — so write guards, the
       stall/continue conditions, later cells and ring reads all observe
       exactly the interpreter's values. *)
    let removed = Array.make (max n 1) false in
    (match mode with
    | `Pre | `Stall -> ()
    | `Main ->
        let posn = Hashtbl.create 16 in
        for i = 0 to n - 1 do
          Hashtbl.replace posn dst.(i) i
        done;
        let blocked pid lo hi =
          (* an instruction strictly between producer and consumer that
             reads [pid] at distance 0 would see it unstamped after
             fusion; a Call hides its operand reads in a closure *)
          let hit = ref false in
          for j = lo + 1 to hi - 1 do
            if
              code.(j) = op_call
              || (ad.(j) = 0 && a.(j) = pid)
              || (bd.(j) = 0 && b.(j) = pid)
              || ((code.(j) = op_mux || code.(j) = op_mac) && cd.(j) = 0 && c.(j) = pid)
            then hit := true
          done;
          !hit
        in
        for ci = 0 to n - 1 do
          if code.(ci) = op_add then begin
            let fuse psrc pd zs zd =
              if code.(ci) = op_add && pd = 0 then
                match Hashtbl.find_opt posn psrc with
                | Some pi
                  when pi < ci && code.(pi) = op_mul && (not removed.(pi))
                       && not (blocked psrc pi ci) ->
                    code.(ci) <- op_mac;
                    imm.(ci) <- tm.(pi);
                    imm2.(ci) <- dst.(pi);
                    c.(ci) <- zs;
                    cd.(ci) <- zd;
                    a.(ci) <- a.(pi);
                    ad.(ci) <- ad.(pi);
                    b.(ci) <- b.(pi);
                    bd.(ci) <- bd.(pi);
                    removed.(pi) <- true
                | _ -> ()
            in
            fuse a.(ci) ad.(ci) b.(ci) bd.(ci);
            fuse b.(ci) bd.(ci) a.(ci) ad.(ci)
          end
        done);
    let live = ref [] in
    for i = n - 1 downto 0 do
      if not removed.(i) then live := i :: !live
    done;
    let live = Array.of_list !live in
    let pick arr = Array.map (fun i -> arr.(i)) live in
    {
      q_n = Array.length live;
      q_code = pick code;
      q_dst = pick dst;
      q_a = pick a;
      q_ad = pick ad;
      q_b = pick b;
      q_bd = pick bd;
      q_c = pick c;
      q_cd = pick cd;
      q_imm = pick imm;
      q_imm2 = pick imm2;
      q_tm = pick tm;
      q_port = pick port;
      q_fn = pick fn;
      q_mask = mask;
      q_values = values;
      q_stamp = stamp;
      q_pre = pre;
    }
  in
  let progs =
    Array.init ii (fun state ->
        Array.init stages (fun stage ->
            build_prog ~mode:`Main (cell_topo dfg fold ~state ~stage)))
  in
  (* port writes split out of the instruction stream: all events of one
     cell share (cycle, iter) and each write reads only its own op's
     value, so emitting them after the cell's instructions in topo order
     yields the exact interpreter event list *)
  let wports : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let wport_names = ref [] in
  let wport_idx p =
    match Hashtbl.find_opt wports p with
    | Some i -> i
    | None ->
        let i = Hashtbl.length wports in
        Hashtbl.replace wports p i;
        wport_names := p :: !wport_names;
        i
  in
  let writes =
    Array.init ii (fun state ->
        Array.init stages (fun stage ->
            cell_topo dfg fold ~state ~stage
            |> List.filter_map (fun id ->
                   let op = Dfg.find dfg id in
                   match op.Dfg.kind with
                   | Opkind.Write p ->
                       Some
                         {
                           w_id = id;
                           w_pidx = wport_idx p;
                           w_preds =
                             Array.of_list
                               (List.map (fun (at : Guard.atom) -> at.Guard.pred) op.Dfg.guard);
                           w_pols =
                             Array.of_list
                               (List.map
                                  (fun (at : Guard.atom) -> at.Guard.polarity)
                                  op.Dfg.guard);
                         }
                   | _ -> None)
            |> Array.of_list))
  in
  let pre_prog = build_prog ~mode:`Pre (pre_topo dfg elab.Elaborate.pre_members) in
  {
    p_ii = ii;
    p_stages = stages;
    p_mask = mask;
    p_values = values;
    p_stamp = stamp;
    p_pre = pre;
    p_pre_stamp = Array.make (max n_ops 1) 0;
    p_progs = progs;
    p_writes = writes;
    p_n_writes =
      Array.fold_left
        (fun acc per_state ->
          Array.fold_left (fun acc ws -> acc + Array.length ws) acc per_state)
        0 writes;
    p_wports = Array.of_list (List.rev !wport_names);
    p_pre_prog = pre_prog;
    p_stall =
      Option.map (fun c -> (c, build_prog ~mode:`Stall [ c ])) region.Region.stall_cond;
    p_continue = region.Region.continue_cond;
    p_funcs = funcs;
    p_ports = Hashtbl.fold (fun p r acc -> (p, r) :: acc) ports [];
  }

(* ------------------------------------------------------------------ *)

let run ?(funcs = Behav.default_fun) ?max_iters ?max_cycles ?(stall_pattern = fun _ -> true)
    (plan : plan) (stim : Stimulus.t) : result =
  plan.p_funcs := funcs;
  List.iter
    (fun (p, r) ->
      match List.assoc_opt p stim.Stimulus.samples with
      | Some a -> r := a
      | None -> invalid_arg ("Stimulus.value: no samples for port " ^ p))
    plan.p_ports;
  (* reset the arena (stamps only; values are gated by their stamp) *)
  Array.iter (fun s -> Array.fill s 0 (Array.length s) (-1)) plan.p_stamp;
  Array.fill plan.p_pre 0 (Array.length plan.p_pre) 0;
  exec_prog plan.p_pre_prog 0 plan.p_pre plan.p_pre_stamp;
  let ii = plan.p_ii and stages = plan.p_stages and mask = plan.p_mask in
  let values = plan.p_values and stamp = plan.p_stamp and pre = plan.p_pre in
  let n_iters = min (Option.value max_iters ~default:stim.Stimulus.n_iters) stim.Stimulus.n_iters in
  let cap =
    match max_cycles with Some c -> c | None -> default_max_cycles ~ii ~stages ~n_iters
  in
  let cont_c = match plan.p_continue with Some c -> c | None -> -1 in
  let stage_iter = Array.make stages (-1) in
  let issued = ref 0 in
  let committed = ref 0 in
  let squashed = ref 0 in
  let stalls = ref 0 in
  let cycle = ref 0 in
  let kernel_state = ref 0 in
  let stop_issue = ref false in
  let exit_at = ref (-1) in
  (* -1 = no exit seen *)
  (* output events in int columns; [out_bound] is the exact event bound
     (each write op fires at most once per issued iteration), but a
     data-dependent exit can finish a million-iteration stimulus in a few
     hundred cycles, so start small and jump straight to the bound on the
     first growth — at most one reallocation either way.  Records
     materialize once at the end — no allocation on the hot path. *)
  let out_n = ref 0 in
  let out_bound = max 16 ((plan.p_n_writes * (n_iters + 1)) + 16) in
  let out_cap = min out_bound 256 in
  let out_port = ref (Array.make out_cap 0) in
  let out_iter = ref (Array.make out_cap 0) in
  let out_cycle = ref (Array.make out_cap 0) in
  let out_value = ref (Array.make out_cap 0) in
  let push_event p it cy v =
    let n = !out_n in
    if n = Array.length !out_port then begin
      let newcap = max out_bound (n * 2) in
      let grow r =
        let a = Array.make newcap 0 in
        Array.blit !r 0 a 0 n;
        r := a
      in
      grow out_port;
      grow out_iter;
      grow out_cycle;
      grow out_value
    end;
    !out_port.(n) <- p;
    !out_iter.(n) <- it;
    !out_cycle.(n) <- cy;
    !out_value.(n) <- v;
    out_n := n + 1
  in
  stage_iter.(0) <- 0;
  issued := 1;
  (* count of stage slots holding a live iteration — the interpreter's
     "any stage active" scan, maintained incrementally at wrap points *)
  let in_flight = ref 1 in
  let guard_cycles = ref 0 in
  while !in_flight > 0 do
    incr guard_cycles;
    if !guard_cycles > cap then raise (Watchdog (watchdog_diag ~engine:"compiled" ~cap));
    (* design-level stall, evaluated against the newest in-flight iteration *)
    let design_go =
      match plan.p_stall with
      | None -> true
      | Some (c, prog) ->
          let iter = ref (-1) in
          for sg = 0 to stages - 1 do
            if stage_iter.(sg) > !iter then iter := stage_iter.(sg)
          done;
          let iter = !iter in
          iter < 0
          ||
          let vs = values.(iter land mask) and ss = stamp.(iter land mask) in
          let v =
            if ss.(c) = iter then vs.(c)
            else begin
              (* not yet computed this iteration: evaluate directly from
                 the current arena state, as the interpreter does *)
              exec_prog prog iter vs ss;
              vs.(c)
            end
          in
          v <> 0
    in
    if not (stall_pattern !cycle && design_go) then begin
      incr stalls;
      incr cycle
    end
    else begin
      (* execute every active stage's cell for this kernel state *)
      let state_progs = plan.p_progs.(!kernel_state) in
      let state_writes = plan.p_writes.(!kernel_state) in
      for sg = 0 to stages - 1 do
        let iter = stage_iter.(sg) in
        if iter >= 0 then begin
          let vs = values.(iter land mask) and ss = stamp.(iter land mask) in
          exec_prog (Array.unsafe_get state_progs sg) iter vs ss;
          let ws = Array.unsafe_get state_writes sg in
          for i = 0 to Array.length ws - 1 do
            let w = Array.unsafe_get ws i in
            let ok = ref true in
            for j = 0 to Array.length w.w_preds - 1 do
              let p = w.w_preds.(j) in
              let v = if ss.(p) = iter then vs.(p) else pre.(p) in
              if v <> 0 <> w.w_pols.(j) then ok := false
            done;
            if !ok then push_event w.w_pidx iter !cycle vs.(w.w_id)
          done;
          (* data-dependent exit evaluated in the stage that computes it *)
          if cont_c >= 0 && !exit_at < 0 && ss.(cont_c) = iter && vs.(cont_c) = 0 then begin
            exit_at := iter;
            stop_issue := true
          end
        end
      done;
      (* advance the kernel state; on wrap, shift stages and issue *)
      incr cycle;
      if !kernel_state = ii - 1 then begin
        kernel_state := 0;
        if !exit_at >= 0 then begin
          let e = !exit_at in
          for sg = 0 to stages - 1 do
            if stage_iter.(sg) > e then begin
              stage_iter.(sg) <- -1;
              incr squashed;
              decr in_flight
            end
          done
        end;
        let oldest = stages - 1 in
        if stage_iter.(oldest) >= 0 then begin
          incr committed;
          decr in_flight
        end;
        for sg = stages - 1 downto 1 do
          stage_iter.(sg) <- stage_iter.(sg - 1)
        done;
        stage_iter.(0) <-
          (if (not !stop_issue) && !issued < n_iters then begin
             let i = !issued in
             incr issued;
             incr in_flight;
             i
           end
           else -1)
      end
      else incr kernel_state
    end
  done;
  (* squashed iterations' outputs never commit *)
  let cutoff = if !exit_at >= 0 then !exit_at else max_int in
  let outputs = ref [] in
  for i = !out_n - 1 downto 0 do
    let it = !out_iter.(i) in
    if it <= cutoff then
      outputs :=
        {
          k_port = plan.p_wports.(!out_port.(i));
          k_iter = it;
          k_cycle = !out_cycle.(i);
          k_value = !out_value.(i);
        }
        :: !outputs
  done;
  {
    k_outputs = !outputs;
    k_iters = !committed;
    k_cycles = !cycle;
    k_stall_cycles = !stalls;
    k_squashed = !squashed;
  }
