(** Simulator of a scheduled (and folded) design.

    Executes the elaborated DFG exactly as the generated hardware would:
    pre-region operations once, then the main-loop region iteration by
    iteration with loop-carried values flowing across distance-[d] edges,
    guards gating port-write commits, and the folded pipeline's timing
    reconstructed analytically (iteration [i] of a pipeline with initiation
    interval II issues at cycle [i * II]; an operation scheduled on step [s]
    of iteration [i] executes at cycle [i * II + s]).

    Data-dependent loop exits behave speculatively, as in the generated
    controller: when iteration [i] computes a false continue condition, the
    younger iterations already in flight are squashed — they consume cycles
    but their port writes are suppressed.  The simulator reports both the
    committed outputs (for equivalence against {!Behav}) and the cycle
    counts (for throughput and power accounting).

    Execution counts per operation are collected for the activity-based
    power model. *)

open Hls_ir
open Hls_core
open Hls_frontend

type output_event = { o_port : string; o_iter : int; o_cycle : int; o_value : int }

type result = {
  r_outputs : output_event list;  (** committed writes, by (cycle, port) *)
  r_iters : int;  (** committed main-loop iterations *)
  r_cycles : int;  (** total cycles from first issue to pipeline drain *)
  r_issued : int;  (** iterations issued, including squashed ones *)
  r_exec_counts : (int, int) Hashtbl.t;  (** op -> number of executions *)
}

let trunc = Width.truncate

type ctx = {
  elab : Elaborate.t;
  sched : Scheduler.t;
  stim : Stimulus.t;
  funcs : string -> int list -> int;
  dfg : Dfg.t;
  pre_values : (int, int) Hashtbl.t;
  exec_counts : int array;  (** dense, op-id-indexed; exported as a table *)
}

let count ctx op = ctx.exec_counts.(op) <- ctx.exec_counts.(op) + 1

(** Value of [op]'s input edge [e] for iteration [iter], given the history
    of per-iteration value tables ([history i] = values of iteration [i]). *)
let edge_value ctx ~history ~iter (e : Dfg.edge) =
  if e.Dfg.distance = 0 then
    match history iter with
    | Some tbl when Hashtbl.mem tbl e.Dfg.src -> Hashtbl.find tbl e.Dfg.src
    | _ -> (
        match Hashtbl.find_opt ctx.pre_values e.Dfg.src with
        | Some v -> v
        | None -> 0)
  else
    match history (iter - e.Dfg.distance) with
    | Some tbl when Hashtbl.mem tbl e.Dfg.src -> Hashtbl.find tbl e.Dfg.src
    | _ -> 0

let guard_true ctx ~values (g : Guard.t) =
  List.for_all
    (fun (a : Guard.atom) ->
      let v =
        match Hashtbl.find_opt values a.Guard.pred with
        | Some v -> v
        | None -> Option.value (Hashtbl.find_opt ctx.pre_values a.Guard.pred) ~default:0
      in
      (v <> 0) = a.Guard.polarity)
    g

(** Evaluate one op for one iteration.  [values] is the iteration's table;
    [history] reaches earlier iterations for loop-carried edges. *)
let eval_op ctx ~history ~values ~iter (op : Dfg.op) : unit =
  count ctx op.Dfg.id;
  let ins = Dfg.in_edges ctx.dfg op.Dfg.id in
  let arg i = edge_value ctx ~history ~iter (List.nth ins i) in
  let args () = List.map (edge_value ctx ~history ~iter) ins in
  let v =
    match op.Dfg.kind with
    | Opkind.Read p -> Stimulus.value ctx.stim ~port:p ~iter
    | Opkind.Const n -> n
    | Opkind.Loop_mux -> if iter = 0 then arg 0 else arg 1
    | Opkind.Write _ -> arg 0
    | Opkind.Call c -> ctx.funcs c.Opkind.callee (args ())
    | Opkind.Concat ->
        let a = arg 0 and b = arg 1 in
        let wb = (Dfg.find ctx.dfg (List.nth ins 1).Dfg.src).Dfg.width in
        (a lsl wb) lor (b land ((1 lsl wb) - 1))
    | Opkind.Sext _ -> arg 0
    | k -> (
        match Opkind.eval_pure k (args ()) with
        | Some v -> v
        | None -> invalid_arg ("Schedule_sim: cannot evaluate " ^ Opkind.to_string k))
  in
  Hashtbl.replace values op.Dfg.id (trunc ~width:op.Dfg.width v)

(** Topological order of a member list over distance-0 edges. *)
let topo_members dfg members =
  let member_set = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) members;
  let succs id =
    List.filter_map
      (fun e ->
        if e.Dfg.distance = 0 && Hashtbl.mem member_set e.Dfg.dst then Some e.Dfg.dst else None)
      (Dfg.out_edges dfg id)
  in
  match Graph_algo.topo_sort ~nodes:members ~succs with
  | Some o -> o
  | None -> invalid_arg "Schedule_sim: combinational cycle in region"

(** Run the simulation.  [max_iters] caps infinite loops; data-dependent
    exits stop earlier. *)
let run ?(funcs = Behav.default_fun) ?max_iters (elab : Elaborate.t) (sched : Scheduler.t)
    (stim : Stimulus.t) : result =
  let dfg = elab.Elaborate.cdfg.Cdfg.dfg in
  let ctx =
    {
      elab;
      sched;
      stim;
      funcs;
      dfg;
      pre_values = Hashtbl.create 32;
      exec_counts = Array.make (Dfg.fold_ops dfg (fun op m -> max m op.Dfg.id) (-1) + 1) 0;
    }
  in
  (* --- pre-region: evaluate once (iteration index 0 for port reads) --- *)
  let pre_order = topo_members dfg elab.Elaborate.pre_members in
  List.iter
    (fun id ->
      let op = Dfg.find dfg id in
      eval_op ctx
        ~history:(fun _ -> Some ctx.pre_values)
        ~values:ctx.pre_values ~iter:0 op)
    pre_order;
  (* --- main loop --- *)
  let region = sched.Scheduler.s_region in
  let ii = Region.ii region in
  let li = sched.Scheduler.s_li in
  let members = List.map (fun o -> o.Dfg.id) (Region.member_ops region) in
  let order = topo_members dfg members in
  let max_distance =
    List.fold_left
      (fun acc e -> max acc e.Dfg.distance)
      1
      (List.concat_map (fun id -> Dfg.in_edges dfg id) members)
  in
  let n_iters = min (Option.value max_iters ~default:stim.Stimulus.n_iters) stim.Stimulus.n_iters in
  let history : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let lookup i = if i < 0 then None else Hashtbl.find_opt history i in
  let outputs = ref [] in
  let committed = ref 0 in
  let issued = ref 0 in
  let exit_iter = ref None in
  (let i = ref 0 in
   let continue_ = ref true in
   while !continue_ && !i < n_iters do
     let values = Hashtbl.create 32 in
     Hashtbl.replace history !i values;
     incr issued;
     List.iter (fun id -> eval_op ctx ~history:lookup ~values ~iter:!i (Dfg.find dfg id)) order;
     (* committed writes of this iteration *)
     List.iter
       (fun id ->
         let op = Dfg.find dfg id in
         match op.Dfg.kind with
         | Opkind.Write p when guard_true ctx ~values op.Dfg.guard ->
             let step =
               match Scheduler.placement sched id with
               | Some pl -> pl.Binding.pl_step
               | None -> li - 1
             in
             outputs :=
               {
                 o_port = p;
                 o_iter = !i;
                 o_cycle = (!i * ii) + step;
                 o_value = Hashtbl.find values id;
               }
               :: !outputs
         | _ -> ())
       order;
     incr committed;
     (match region.Region.continue_cond with
     | Some c ->
         let v = Option.value (Hashtbl.find_opt values c) ~default:0 in
         if v = 0 then begin
           continue_ := false;
           exit_iter := Some !i
         end
     | None -> ());
     (* bound history to the loop-carried horizon *)
     if !i - max_distance >= 0 then Hashtbl.remove history (!i - max_distance);
     incr i
   done);
  (* --- pipeline squash accounting: iterations in flight past the exit --- *)
  let squashed =
    match (!exit_iter, Region.is_pipelined region) with
    | Some i, true ->
        (* exit detected at the step where the continue condition is
           scheduled; younger iterations already issued are squashed *)
        let cond_step =
          match region.Region.continue_cond with
          | Some c -> (
              match Scheduler.placement sched c with
              | Some pl -> pl.Binding.pl_finish
              | None -> li - 1)
          | None -> li - 1
        in
        let overlap = cond_step / ii in
        ignore i;
        min overlap (n_iters - !committed)
    | _ -> 0
  in
  issued := !issued + squashed;
  let cycles =
    if !committed = 0 then 0
    else ((!committed - 1 + squashed) * ii) + li
  in
  {
    r_outputs = List.rev !outputs;
    r_iters = !committed;
    r_cycles = cycles;
    r_issued = !issued;
    r_exec_counts =
      (* export only the executed ops, as the table-based counter did *)
      (let tbl = Hashtbl.create 64 in
       Array.iteri (fun id n -> if n > 0 then Hashtbl.replace tbl id n) ctx.exec_counts;
       tbl);
  }

let port_values (r : result) port =
  List.filter_map (fun o -> if o.o_port = port then Some o.o_value else None) r.r_outputs
