(** Golden behavioural interpreter over the (lowered) AST: bit-accurate
    reference semantics for the scheduled design (width rules mirror
    elaboration; iteration [i] reads sample [i] of each port). *)

type output_event = { o_port : string; o_iter : int; o_value : int }

type result = {
  r_outputs : output_event list;  (** in program order *)
  r_iters : int;  (** main-loop iterations executed *)
  r_env : (string * int) list;  (** final variable values *)
}

val default_fun : string -> int list -> int
(** Deterministic stand-in for black-box [Call]s. *)

val run :
  ?funcs:(string -> int list -> int) ->
  ?nest:Hls_frontend.Desugar.nest_mode ->
  Hls_frontend.Ast.design ->
  Stimulus.t ->
  result
(** Execute one outer round: pre statements, the main loop (bounded by the
    stimulus length or a false continue condition), post statements.
    [nest] must match the lowering used for elaboration so that one
    main-loop iteration (and hence one port sample) means the same thing
    in both worlds. *)

val port_values : result -> string -> int list
(** One port's outputs in emission order. *)
