(** Functional equivalence between the behavioural golden model and a
    simulated scheduled design: the schedule preserves semantics iff every
    output port's committed value sequence matches. *)

type mismatch = {
  m_port : string;
  m_index : int;
  m_expected : int option;  (** [None] = golden produced fewer values *)
  m_actual : int option;
}

type verdict = { equivalent : bool; mismatches : mismatch list; checked_values : int }

val compare_port : port:string -> int list -> int list -> mismatch list

val check : out_ports:(string * int) list -> Behav.result -> Schedule_sim.result -> verdict

val check_kernel : out_ports:(string * int) list -> Behav.result -> Kernel_sim.result -> verdict
(** Behavioural trace vs the folded-kernel simulator — the extra gate the
    loop-nest path adds: a flattened nest must stay byte-identical through
    folding too. *)

val both : verdict -> verdict -> verdict
(** Merge two verdicts (equivalent iff both are). *)

val mismatch_to_string : mismatch -> string
val verdict_to_string : verdict -> string
