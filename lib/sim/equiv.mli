(** Functional equivalence between the behavioural golden model and a
    simulated scheduled design: the schedule preserves semantics iff every
    output port's committed value sequence matches. *)

type mismatch = {
  m_port : string;
  m_index : int;
  m_expected : int option;  (** [None] = golden produced fewer values *)
  m_actual : int option;
}

type verdict = { equivalent : bool; mismatches : mismatch list; checked_values : int }

val compare_port : port:string -> int list -> int list -> mismatch list

val check : out_ports:(string * int) list -> Behav.result -> Schedule_sim.result -> verdict

val check_kernel : out_ports:(string * int) list -> Behav.result -> Kernel_sim.result -> verdict
(** Behavioural trace vs the folded-kernel simulator — the extra gate the
    loop-nest path adds: a flattened nest must stay byte-identical through
    folding too. *)

val both : verdict -> verdict -> verdict
(** Merge two verdicts (equivalent iff both are). *)

val mismatch_to_string : mismatch -> string
val verdict_to_string : verdict -> string

(** {1 Randomized three-way fuzzing}

    Seeded random designs × micro-architectures × stimuli (stall
    patterns and early exits included), checked behavioural ≡
    schedule-sim ≡ compiled kernel, with an interpreted-vs-compiled
    cross-check of the full kernel result record.  The CI gate behind
    the compiled engine. *)

val gen_design : seed:int -> Hls_frontend.Ast.design
(** Deterministic random pipelineable design: declared variables seeded
    pre-loop, a loop-carried accumulator SCC, random dataflow, guarded
    writes, and (one in three) a geometric data-dependent exit. *)

type fuzz_failure = {
  ff_case : int;
  ff_seed : int;
  ff_arch : string;  (** micro-architecture + stimulus description *)
  ff_detail : string;  (** mismatching verdict or exception *)
}

type fuzz_report = {
  fz_cases : int;
  fz_equivalent : int;
  fz_infeasible : int;  (** schedule found no feasible pipeline: skipped *)
  fz_checked_values : int;
  fz_failures : fuzz_failure list;
}

val fuzz : ?cases:int -> seed:int -> unit -> fuzz_report
(** Run [cases] (default 200) seeded random three-way checks.
    Deterministic for a given [seed]; failures carry the case seed so
    any find replays exactly. *)

val fuzz_ok : fuzz_report -> bool
(** No failures and at least one equivalent case. *)

val fuzz_to_string : fuzz_report -> string
