(** Cycle-stepped simulator of the {e folded} pipeline: steps the
    generated controller clock by clock — kernel-state counter,
    stage-validity shift register (prologue/epilogue), stall freezing, and
    data-dependent exit with squash of younger in-flight iterations —
    exactly as the emitted RTL behaves.  Two engines share these
    semantics: the reference tree-walking interpreter and the compiled
    plan of {!Kernel_compile} (the default).  Cross-checked against the
    behavioural golden model and {!Schedule_sim} in the test matrix and
    by the randomized {!Equiv.fuzz} gate. *)

type output_event = Kernel_compile.output_event = {
  k_port : string;
  k_iter : int;
  k_cycle : int;
  k_value : int;
}

type result = Kernel_compile.result = {
  k_outputs : output_event list;
  k_iters : int;  (** committed iterations *)
  k_cycles : int;  (** cycles stepped, stalls and drain included *)
  k_stall_cycles : int;
  k_squashed : int;  (** iterations issued past the exit and discarded *)
}

exception Watchdog of Hls_diag.Diag.t
(** Alias of {!Kernel_compile.Watchdog}.  Raised ([watchdog_exceeded]
    diagnostic) when the pipeline is still
    active past [max_cycles] — e.g. a stall condition that never
    releases.  Formerly the loop exited silently with a truncated
    result. *)

val run :
  ?funcs:(string -> int list -> int) ->
  ?max_iters:int ->
  ?max_cycles:int ->
  ?stall_pattern:(int -> bool) ->
  ?engine:[ `Interp | `Compiled ] ->
  Hls_frontend.Elaborate.t ->
  Hls_core.Scheduler.t ->
  Stimulus.t ->
  result
(** [stall_pattern cycle] = false freezes the pipeline at [cycle]
    (external stall); the design's own [stall_until] condition is honoured
    independently.  [max_cycles] (default
    {!Kernel_compile.default_max_cycles}) bounds the run; exceeding it
    with iterations still in flight raises {!Watchdog}.  [engine]
    defaults to [`Compiled]; [`Interp] is the executable specification
    the compiled plan is diffed against. *)

val port_values : result -> string -> int list
(** Committed values of one port in iteration order. *)
